/// \file serve_replay.cpp
/// \brief Serving-runtime bench: snapshot round-trip cost, then request
/// replay through the `serve::Service` at 1 and N worker threads, with
/// and without a live customize swap mid-replay.
///
/// What the rows price:
///  - `snapshot`: save + validated mmap open of the matrix + hierarchy —
///    the offline setup amortization the snapshot format exists for;
///  - `replay` rows: p50/p99/mean request latency and solves/sec per
///    (threads, customize) cell. Every row carries `combined_digest`; the
///    serial and threaded digests must be equal bit for bit (including
///    the swap rows — epoch pinning decouples results from scheduling),
///    and the bench exits nonzero if they are not, so the JSON doubles as
///    a determinism check.
///
/// Emits one JSON object per cell (stdout + `--out`, default
/// BENCH_serve_replay.json) through `obs::Report`, like every other
/// bench.
///
/// Usage: bench_serve_replay [--scale=F] [--requests=N] [--threads=N]
///                           [--pool=N] [--out=PATH]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/digest.hpp"
#include "graph/generators.hpp"
#include "multilevel/builder.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"

namespace parmis {
namespace {

struct Options {
  double scale = 0.25;
  std::size_t requests = 64;
  int threads = 4;
  std::size_t pool = 4;
  std::string out = "BENCH_serve_replay.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--requests=", 11)) {
      o.requests = static_cast<std::size_t>(std::atoll(s + 11));
    } else if (!std::strncmp(s, "--threads=", 10)) {
      o.threads = std::atoi(s + 10);
    } else if (!std::strncmp(s, "--pool=", 7)) {
      o.pool = static_cast<std::size_t>(std::atoll(s + 7));
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=F] [--requests=N] [--threads=N] [--pool=N] [--out=PATH]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return o;
}

serve::Service make_service(const serve::SnapshotView& snap, std::size_t pool) {
  serve::Service::Options sopts;
  sopts.pool.solver = "cg";
  sopts.pool.prec = "amg";
  sopts.pool.size = pool;
  return serve::Service::from_snapshot(sopts, snap);
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);

  const ordinal_t nx = std::max<ordinal_t>(24, static_cast<ordinal_t>(64 * opt.scale));
  const graph::CrsMatrix a = graph::laplace3d(nx, nx, nx);

  obs::JsonArrayWriter out(opt.out);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# serve_replay: laplace3d nx=%d (%d rows), requests=%zu, pool=%zu\n", nx,
              a.num_rows, opt.requests, opt.pool);

  // --- snapshot round trip -------------------------------------------------
  const std::string snap_path = "bench_serve_replay.snap";
  multilevel::HierarchyHandle h;
  {
    multilevel::Options mo;
    mo.complexity_cap = 10.0;
    mo.min_coarse_size = 500;
    const multilevel::Builder builder(mo);
    obs::Timer build_timer;
    (void)builder.build_galerkin(a, h);
    const double build_s = build_timer.seconds();

    obs::Timer save_timer;
    serve::save_snapshot(snap_path, a, &h);
    const double save_s = save_timer.seconds();
    obs::Timer open_timer;
    const serve::SnapshotView probe = serve::SnapshotView::open(snap_path);
    const double open_s = open_timer.seconds();

    obs::Report report;
    report.set("bench", "serve_replay");
    obs::add_graph(report, "laplace3d", a.num_rows, a.num_entries());
    report.set("mode", "snapshot");
    report.set("levels", probe.hierarchy_levels("hierarchy"));
    report.set("snapshot_bytes", probe.file_size());
    report.set("hierarchy_build_seconds", build_s);
    report.set("save_seconds", save_s);
    report.set("open_verify_seconds", open_s);
    const std::string json = report.to_json();
    std::printf("%s\n", json.c_str());
    out.row(json);
  }
  const serve::SnapshotView snap = serve::SnapshotView::open(snap_path);

  // --- replay cells --------------------------------------------------------
  struct Cell {
    const char* name;
    int threads;
    bool customize;
  };
  const int nthreads = opt.threads < 2 ? 2 : opt.threads;
  const std::vector<Cell> cells = {
      {"serial", 1, false},
      {"threaded", nthreads, false},
      {"serial_customize", 1, true},
      {"threaded_customize", nthreads, true},
  };

  bool digests_ok = true;
  std::uint64_t expect_plain = 0;
  std::uint64_t expect_swap = 0;
  for (const Cell& cell : cells) {
    serve::Service service = make_service(snap, opt.pool);
    const std::size_t customize_at = cell.customize ? opt.requests / 2 : 0;
    const std::vector<serve::ServeRequest> requests =
        serve::make_requests(opt.requests, 1, service.epoch(), customize_at);
    serve::ReplayOptions ropts;
    ropts.threads = cell.threads;
    ropts.customize_at = customize_at;
    const serve::ReplayResult result = serve::replay(service, requests, ropts);
    const serve::ReplayStats& st = result.stats;

    // Serial rows define the expected digest; threaded rows must match.
    std::uint64_t& expect = cell.customize ? expect_swap : expect_plain;
    if (cell.threads == 1) {
      expect = st.combined_digest;
    } else if (st.combined_digest != expect) {
      std::fprintf(stderr, "DIGEST MISMATCH: %s %s != serial %s\n", cell.name,
                   check::digest_hex(st.combined_digest).c_str(),
                   check::digest_hex(expect).c_str());
      digests_ok = false;
    }

    const serve::PoolStats pstats = service.pool().stats();
    obs::Report report;
    report.set("bench", "serve_replay");
    obs::add_graph(report, "laplace3d", a.num_rows, a.num_entries());
    report.set("mode", cell.name);
    report.set("threads", st.threads);
    report.set("pool", static_cast<std::int64_t>(opt.pool));
    report.set("customize_at", static_cast<std::int64_t>(customize_at));
    report.set("converged", st.converged);
    std::vector<double> lat(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      lat[i] = result.outcomes[i].seconds;
    }
    obs::add_latency_stats(report, lat, st.wall_seconds);
    report.set("combined_digest", check::digest_hex(st.combined_digest));
    report.set("pool_level_adoptions", pstats.level_adoptions);
    report.set("pool_warm_hits", pstats.warm_hits);
    const std::string json = report.to_json();
    std::printf("%s\n", json.c_str());
    out.row(json);
  }
  std::remove(snap_path.c_str());

  if (!out.close()) {
    std::fprintf(stderr, "write error on %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", opt.out.c_str());
  return digests_ok ? 0 : 1;
}
