/// \file obs_overhead.cpp
/// \brief Tracing-overhead bench: wall time of the MIS-2 and SpGEMM hot
/// kernels with tracing disabled, enabled with per-chunk spans sampled
/// (1 in 64 chunked loops), and enabled at full per-chunk resolution.
///
/// The disabled path is the one every production run pays: a single
/// relaxed atomic load per `PARMIS_SPAN` site and per chunked loop. The
/// `off` rows are that path (the baseline, measured with the spans
/// compiled in — the only build we ship); `overhead_vs_off_pct` prices
/// the enabled modes against it so users can pick a `--trace-sample`
/// value. Enabled-mode overhead lands at ~1% (single-digit percent at
/// full per-chunk resolution, within run-to-run noise when sampled); the
/// off path's absolute cost is separately pinned by the
/// `ObsTrace.DisabledSpans*` tests (zero allocation, sub-ns-scale site
/// cost).
///
/// Emits one JSON object per (kernel, mode) cell (stdout + `--out`,
/// default BENCH_obs_overhead.json) through `obs::Report`, like every
/// other bench.
///
/// Usage: bench_obs_overhead [--scale=F] [--trials=N] [--out=PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mis2.hpp"
#include "graph/generators.hpp"
#include "graph/rgg.hpp"
#include "graph/spgemm.hpp"
#include "obs/telemetry.hpp"

namespace parmis {
namespace {

struct Options {
  double scale = 0.25;
  int trials = 7;
  std::string out = "BENCH_obs_overhead.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--trials=", 9)) {
      o.trials = std::atoi(s + 9);
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr, "usage: %s [--scale=F] [--trials=N] [--out=PATH]\n", argv[0]);
      std::exit(1);
    }
  }
  return o;
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);

  const ordinal_t n = std::max<ordinal_t>(4000, static_cast<ordinal_t>(100000 * opt.scale));
  const graph::CrsGraph g = graph::random_geometric_3d(n, 12.0, 7);
  const graph::CrsMatrix m = graph::laplacian_matrix(g, 1.0);

  struct Kernel {
    const char* name;
    std::function<void()> run;
  };
  std::vector<Kernel> kernels;
  kernels.push_back({"mis2", [&] { (void)core::mis2(g); }});
  kernels.push_back({"spgemm", [&] { (void)graph::spgemm(m, m); }});

  struct Mode {
    const char* name;
    bool enabled;
    int sample;
  };
  const Mode modes[] = {{"off", false, 0}, {"sampled_64", true, 64}, {"full", true, 1}};

  obs::JsonArrayWriter out(opt.out);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }

  std::printf("# obs_overhead: trials=%d scale=%.3f (rgg n=%d)\n", opt.trials, opt.scale, n);

  for (const Kernel& k : kernels) {
    double off_s = 0;
    for (const Mode& mode : modes) {
      obs::clear_events();
      obs::set_tracing(mode.enabled, mode.sample);
      const double s = bench::time_mean_s(opt.trials, k.run);
      obs::set_tracing(false);
      const std::uint64_t events = obs::total_events();
      if (!std::strcmp(mode.name, "off")) off_s = s;

      obs::Report report;
      report.set("bench", "obs_overhead");
      obs::add_graph(report, "rgg_uniform", g.num_rows, g.num_entries());
      report.set("kernel", k.name);
      report.set("mode", mode.name);
      report.set("seconds", s);
      report.set("events", events);
      if (off_s > 0) {
        report.set("overhead_vs_off_pct", 100.0 * (s - off_s) / off_s);
      }
      const std::string json = report.to_json();
      std::printf("%s\n", json.c_str());
      out.row(json);
    }
    obs::clear_events();
  }
  if (!out.close()) {
    std::fprintf(stderr, "write error on %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", opt.out.c_str());
  return 0;
}
