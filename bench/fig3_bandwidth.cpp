/// \file fig3_bandwidth.cpp
/// \brief Reproduces Fig. 3: bandwidth-efficiency profiles. The algorithm
/// is memory bound, so the paper normalizes MIS-2 throughput (instances
/// per second) by each platform's memory bandwidth and compares the
/// resulting efficiency across platforms per problem.
///
/// Platforms are substituted by backend configurations (DESIGN.md §4);
/// each configuration's sustainable bandwidth is measured with a
/// STREAM-triad probe under the same thread count. For each problem the
/// profile value is efficiency / best-efficiency-for-that-problem, i.e. 1.0
/// marks the most bandwidth-efficient configuration.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/mis2.hpp"
#include "parallel/execution.hpp"
#include "parallel/parallel_for.hpp"

namespace {

using namespace parmis;

/// STREAM-triad bandwidth (GB/s) under the current execution config.
double triad_gbs() {
  const std::int64_t n = 1 << 25;  // 3 x 256 MiB traffic per pass
  std::vector<double> a(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n), 2.0);
  std::vector<double> c(static_cast<std::size_t>(n), 0.0);
  // Warmup + 3 timed passes.
  for (int pass = 0; pass < 1; ++pass) {
    par::parallel_for(n, [&](std::int64_t i) {
      c[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] + 3.0 * b[static_cast<std::size_t>(i)];
    });
  }
  const int passes = 3;
  const double secs = bench::time_once_s("fig3.triad", [&] {
    for (int pass = 0; pass < passes; ++pass) {
      par::parallel_for(n, [&](std::int64_t i) {
        c[static_cast<std::size_t>(i)] =
            a[static_cast<std::size_t>(i)] + 3.0 * b[static_cast<std::size_t>(i)];
      });
    }
  });
  const double bytes = static_cast<double>(passes) * 3.0 * 8.0 * static_cast<double>(n);
  return bytes / secs / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);

  struct Config {
    const char* name;
    par::Backend backend;
    int threads;
    double gbs = 0;
  };
  const int max_threads = par::Execution::max_threads();
  std::vector<Config> configs = {
      {"serial", par::Backend::Serial, 1},
      {"omp-quarter", par::Backend::OpenMP, std::max(1, max_threads / 4)},
      {"omp-half", par::Backend::OpenMP, std::max(1, max_threads / 2)},
      {"omp-full", par::Backend::OpenMP, max_threads},
  };

  std::printf("Fig. 3: bandwidth-efficiency profiles (scale=%.2f, %d trials)\n", args.scale,
              args.trials);
  for (Config& c : configs) {
    par::ScopedExecution scope(c.backend, c.threads);
    c.gbs = triad_gbs();
    std::printf("  config %-12s: STREAM triad %.1f GB/s\n", c.name, c.gbs);
  }

  std::printf("\nprofile: (MIS-2 instances/s per GB/s), normalized to the best config per row\n");
  std::printf("%-18s", "matrix");
  for (const Config& c : configs) std::printf(" %12s", c.name);
  std::printf("\n");
  bench::print_rule(70);

  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);
    std::vector<double> eff;
    for (const Config& c : configs) {
      par::ScopedExecution scope(c.backend, c.threads);
      const double s = bench::time_mean_s(args.trials, [&] { (void)core::mis2(g); });
      eff.push_back((1.0 / s) / c.gbs);
    }
    const double best = *std::max_element(eff.begin(), eff.end());
    std::printf("%-18s", spec.name.c_str());
    for (double e : eff) std::printf(" %12.2f", e / best);
    std::printf("\n");
  }
  std::printf("\n(paper: the CPU — Skylake — has the best efficiency on all but one problem;\n"
              " here the serial/low-thread configs typically win for the same reason:\n"
              " fewer threads saturate less bandwidth but waste none on synchronization)\n");
  return 0;
}
