/// \file table2_timings.cpp
/// \brief Reproduces Table II: summary statistics of the 17 matrices and
/// mean MIS-2 running times per execution configuration.
///
/// The paper's four architectures (V100, MI100, Skylake, ThunderX2) are
/// substituted by backend configurations of this machine (DESIGN.md §4):
/// Serial, OpenMP with half the cores, and OpenMP with all cores. Absolute
/// times differ from the paper; the per-matrix *ordering* (bigger/denser
/// graphs cost more; times scale with |E|) is the reproducible shape.

#include <cstdio>

#include "bench_common.hpp"
#include "core/mis2.hpp"
#include "parallel/execution.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  const int max_threads = par::Execution::max_threads();
  const int half_threads = std::max(1, max_threads / 2);

  std::printf(
      "Table II: matrix statistics and mean MIS-2 times in ms (scale=%.2f, %d trials)\n",
      args.scale, args.trials);
  std::printf("%-18s %10s %12s %8s %8s | %10s %12s %12s\n", "matrix", "|V|", "|E|", "avg",
              "max", "serial", "omp-half", "omp-full");
  bench::print_rule(110);

  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);
    const graph::DegreeStats stats = graph::degree_stats(g);

    auto mean_ms = [&](par::Backend backend, int threads) {
      par::ScopedExecution scope(backend, threads);
      return 1e3 * bench::time_mean_s(args.trials, [&] { (void)core::mis2(g); });
    };
    const double serial_ms = mean_ms(par::Backend::Serial, 1);
    const double half_ms = mean_ms(par::Backend::OpenMP, half_threads);
    const double full_ms = mean_ms(par::Backend::OpenMP, max_threads);

    std::printf("%-18s %10d %12lld %8.2f %8d | %10.2f %12.2f %12.2f\n", spec.name.c_str(),
                g.num_rows, static_cast<long long>(g.num_entries()), stats.avg_degree,
                stats.max_degree, serial_ms, half_ms, full_ms);
  }
  std::printf("\n(paper Table II reports: V100 2.18-10.1 ms, MI100 2.98-16.3 ms,\n"
              " Skylake 4.37-49.6 ms, ThunderX2 4.07-57.7 ms on the real matrices)\n");
  return 0;
}
