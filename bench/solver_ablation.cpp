/// \file solver_ablation.cpp
/// \brief Solver-stack ablation: time-to-tolerance and iteration counts for
/// every registered solver × preconditioner combination (× coarsener for
/// the coarsening preconditioners) on the RGG and power-law generators.
///
/// The solver-side companion of bench/balance_ablation: quantifies what
/// each preconditioner buys on a uniform-degree geometric input versus a
/// skewed-degree power-law input, and what the coarsening scheme (the
/// paper's MIS-2 aggregation vs basic MIS-2 vs HEM) changes for cluster-GS
/// and AMG. Solves A x = b with A = Laplacian(G) + I, b deterministic,
/// x0 = 0; solve time is the mean over `--trials` warm repetitions through
/// one `SolveHandle` (setup paid once, reported separately).
///
/// Emits one JSON object per cell (stdout + `--out`, default
/// BENCH_solver_ablation.json). Rows are `obs::Report` objects built by the
/// telemetry adapters, so the keys are identical to `linear_solve --json`
/// and bench/hierarchy_ablation — one schema everywhere.
///
/// Usage: bench_solver_ablation [--scale=F] [--trials=N] [--tol=T]
///                              [--maxit=N] [--out=PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "graph/rgg.hpp"
#include "obs/telemetry.hpp"
#include "resilience/status.hpp"
#include "solver/amg.hpp"
#include "solver/handle.hpp"
#include "solver/vector_ops.hpp"

namespace parmis {
namespace {

struct Options {
  double scale = 0.25;
  int trials = 3;
  double tol = 1e-8;
  int maxit = 400;
  std::string out = "BENCH_solver_ablation.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--trials=", 9)) {
      o.trials = std::atoi(s + 9);
    } else if (!std::strncmp(s, "--tol=", 6)) {
      o.tol = std::atof(s + 6);
    } else if (!std::strncmp(s, "--maxit=", 8)) {
      o.maxit = std::atoi(s + 8);
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr, "usage: %s [--scale=F] [--trials=N] [--tol=T] [--maxit=N] [--out=PATH]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return o;
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);

  struct Input {
    std::string name;
    graph::CrsGraph g;
  };
  const ordinal_t n = std::max<ordinal_t>(4000, static_cast<ordinal_t>(100000 * opt.scale));
  std::vector<Input> inputs;
  inputs.push_back({"rgg_uniform", graph::random_geometric_3d(n, 12.0, 7)});
  inputs.push_back(
      {"power_law_skewed",
       graph::power_law_graph(n, 2.2, 4, std::max<ordinal_t>(64, n / 60), 42)});

  obs::JsonArrayWriter out(opt.out);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }
  auto emit = [&](const obs::Report& report) {
    const std::string json = report.to_json();
    std::printf("%s\n", json.c_str());
    out.row(json);
  };

  solver::IterOptions iter_opts;
  iter_opts.tolerance = opt.tol;
  iter_opts.max_iterations = opt.maxit;

  std::printf("# solver_ablation: trials=%d scale=%.3f tol=%.1e maxit=%d\n", opt.trials,
              opt.scale, opt.tol, opt.maxit);

  for (const Input& in : inputs) {
    const graph::CrsMatrix a = graph::laplacian_matrix(in.g, 1.0);
    const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 1);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);

    for (const std::string& pname : solver::preconditioner_names()) {
      const std::vector<std::string> coarseners = solver::find_preconditioner(pname).uses_coarsener
                                                      ? core::coarsener_names()
                                                      : std::vector<std::string>{"-"};
      for (const std::string& cname : coarseners) {
        solver::SolveHandle handle;
        handle.set_preconditioner(pname);
        if (cname != "-") {
          handle.prec_options().coarsener = cname;
          handle.prec_options().amg.coarsener = cname;
        }
        Timer setup_timer;
        try {
          handle.setup(a);
        } catch (const std::exception& e) {
          // A combo whose setup fails still gets a row (status
          // "setup_failed" / "singular_operator") instead of being
          // silently dropped from the sweep — absent rows read as
          // "not measured", not "failed".
          const auto* classified = dynamic_cast<const resilience::SolveError*>(&e);
          for (const std::string& sname : solver::solver_names()) {
            obs::Report report;
            report.set("bench", "solver_ablation");
            obs::add_graph(report, in.name, a.num_rows, a.num_entries());
            report.set("solver", sname);
            report.set("prec", pname);
            report.set("coarsener", cname);
            report.set("converged", false);
            report.set("status",
                       std::string(resilience::to_string(
                           classified ? classified->status()
                                      : resilience::SolveStatus::SetupFailed)));
            if (classified && classified->info().reason[0] != '\0') {
              report.set("failure_reason", std::string(classified->info().reason));
            }
            emit(report);
          }
          continue;
        }
        const double setup_s = setup_timer.seconds();

        for (const std::string& sname : solver::solver_names()) {
          handle.set_solver(sname);
          const double solve_s = bench::time_mean_s(opt.trials, [&] {
            std::fill(x.begin(), x.end(), 0.0);
            (void)handle.solve(a, b, x, iter_opts);
          });
          const solver::IterResult& r = handle.result();
          obs::Report report;
          report.set("bench", "solver_ablation");
          obs::add_graph(report, in.name, a.num_rows, a.num_entries());
          report.set("solver", sname);
          report.set("prec", pname);
          report.set("coarsener", cname);
          obs::add_iter_result(report, r);
          report.set("setup_seconds", setup_s);
          report.set("solve_seconds", solve_s);
          // Hierarchy telemetry for the multigrid rows (same adapter — so
          // the same keys — as bench/hierarchy_ablation and linear_solve).
          if (const auto* amg =
                  dynamic_cast<const solver::AmgHierarchy*>(handle.preconditioner())) {
            obs::add_hierarchy(report, amg->hierarchy_stats());
          }
          emit(report);
        }
      }
    }
  }
  if (!out.close()) {
    std::fprintf(stderr, "write error on %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", opt.out.c_str());
  return 0;
}
