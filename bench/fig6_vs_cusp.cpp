/// \file fig6_vs_cusp.cpp
/// \brief Reproduces Fig. 6: Kokkos-Kernels-style MIS-2 (Algorithm 1)
/// versus CUSP on the 17 matrices, MIS-2 computation alone.
///
/// CUSP implements the Bell/Dalton/Olson algorithm; our faithful
/// reimplementation of that algorithm (core/bell_misk) stands in for it on
/// identical hardware (DESIGN.md §4). Paper: 5-7x speedup on V100.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bell_misk.hpp"
#include "core/mis2.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Fig. 6: MIS-2 alone, Algorithm 1 vs CUSP-surrogate (scale=%.2f, %d trials)\n",
              args.scale, args.trials);
  std::printf("%-18s %12s %12s %10s\n", "matrix", "cusp(ms)", "kk(ms)", "speedup");
  bench::print_rule(60);

  std::vector<double> speedups;
  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);
    const double cusp_s = bench::time_mean_s(args.trials, [&] { (void)core::bell_misk(g, 2); });
    const double kk_s = bench::time_mean_s(args.trials, [&] { (void)core::mis2(g); });
    speedups.push_back(cusp_s / kk_s);
    std::printf("%-18s %12.2f %12.2f %9.2fx\n", spec.name.c_str(), 1e3 * cusp_s, 1e3 * kk_s,
                cusp_s / kk_s);
  }
  bench::print_rule(60);
  std::printf("%-18s %12s %12s %9.2fx   (geometric mean; paper: 5-7x)\n", "GEOMEAN", "", "",
              bench::geomean(speedups));
  return 0;
}
