/// \file fig45_strong_scaling.cpp
/// \brief Reproduces Figs. 4-5: strong-scaling efficiency of MIS-2 over
/// OpenMP thread counts for the 17 matrices (the paper runs dual-socket
/// Skylake and ThunderX2; we sweep this host's cores).
///
/// Efficiency = t(1 thread) / (t(p threads) * p); ideal is 1. The paper
/// observes good scaling to all physical cores and a slowdown when
/// oversubscribing to hardware threads.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/mis2.hpp"
#include "parallel/execution.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  const int max_threads = par::Execution::max_threads();
  std::vector<int> thread_counts;
  for (int t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  std::printf("Figs. 4-5: strong-scaling efficiency of MIS-2 (scale=%.2f, %d trials)\n",
              args.scale, args.trials);
  std::printf("%-18s", "matrix");
  for (int t : thread_counts) std::printf(" %8dT", t);
  std::printf("\n");
  bench::print_rule(90);

  std::vector<double> max_speedups;
  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);
    double t1 = 0;
    std::printf("%-18s", spec.name.c_str());
    for (int t : thread_counts) {
      par::ScopedExecution scope(par::Backend::OpenMP, t);
      const double s = bench::time_mean_s(args.trials, [&] { (void)core::mis2(g); });
      if (t == 1) t1 = s;
      std::printf(" %9.2f", t1 / (s * t));
      if (t == max_threads) max_speedups.push_back(t1 / s);
    }
    std::printf("\n");
  }
  bench::print_rule(90);
  std::printf("geometric-mean speedup at %d threads: %.1fx\n", max_threads,
              bench::geomean(max_speedups));
  std::printf("(paper: 26.9x on 48 Skylake cores, 43.9x on 56 ThunderX2 cores)\n");
  return 0;
}
