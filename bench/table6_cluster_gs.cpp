/// \file table6_cluster_gs.cpp
/// \brief Reproduces Table VI: point vs cluster multicolor symmetric
/// Gauss-Seidel as GMRES preconditioners on five systems (setup time,
/// total apply/solve time, iteration counts; tol 1e-8, cap 800).
///
/// Paper shape to reproduce: the cluster method is faster in *both* setup
/// (it colors a much smaller coarse graph) and apply, with iteration
/// counts at or slightly below the point method (5% geometric mean).
///
/// Matrix values: the two Galeri problems are generated exactly; the
/// SuiteSparse systems (bodyy5, Geo_1438, Serena) use the registry's
/// Laplacian-valued surrogates, which are better conditioned than the
/// originals, so absolute iteration counts land below the paper's.

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "solver/cluster_gs.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  const char* systems[] = {"bodyy5", "Elasticity3D_60", "Geo_1438", "Laplace3D_100", "Serena"};

  std::printf("Table VI: point vs cluster multicolor SGS-preconditioned GMRES "
              "(scale=%.2f, tol 1e-8, cap 800)\n", args.scale);
  std::printf("%-16s | %10s %10s | %10s %10s | %7s %7s\n", "system", "P.Setup", "C.Setup",
              "P.Apply", "C.Apply", "P.It", "C.It");
  bench::print_rule(90);

  std::vector<double> iter_ratios;
  for (const char* name : systems) {
    // bodyy5 is small; always run it at paper scale.
    const double scale = std::string(name) == "bodyy5" ? 1.0 : args.scale;
    const graph::CrsMatrix a = graph::find_matrix(name).build(scale);
    const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 3);
    solver::IterOptions opts;
    opts.tolerance = 1e-8;
    opts.max_iterations = 800;

    std::optional<solver::PointGsPreconditioner> point_prec;
    const double point_setup_s =
        bench::time_once_s("table6.point_setup", [&] { point_prec.emplace(a); });

    std::optional<solver::ClusterGsPreconditioner> cluster_prec;
    const double cluster_setup_s =
        bench::time_once_s("table6.cluster_setup", [&] { cluster_prec.emplace(a); });

    std::vector<scalar_t> xp(static_cast<std::size_t>(a.num_rows), 0);
    solver::IterResult pr;
    const double point_apply_s = bench::time_once_s(
        "table6.point_solve", [&] { pr = solver::gmres(a, b, xp, opts, &*point_prec); });

    std::vector<scalar_t> xc(static_cast<std::size_t>(a.num_rows), 0);
    solver::IterResult cr;
    const double cluster_apply_s = bench::time_once_s(
        "table6.cluster_solve", [&] { cr = solver::gmres(a, b, xc, opts, &*cluster_prec); });

    if (pr.converged && cr.converged) {
      iter_ratios.push_back(static_cast<double>(cr.iterations) / pr.iterations);
    }
    std::printf("%-16s | %10.4f %10.4f | %10.3f %10.3f | %7d %7d%s\n", name, point_setup_s,
                cluster_setup_s, point_apply_s, cluster_apply_s, pr.iterations, cr.iterations,
                (pr.converged && cr.converged) ? "" : "  (no convergence)");
  }
  bench::print_rule(90);
  std::printf("cluster/point iteration ratio (geomean): %.3f   (paper: 0.95)\n",
              bench::geomean(iter_ratios));
  return 0;
}
