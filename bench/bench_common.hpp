#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the per-table/per-figure benchmark binaries.
///
/// Every binary accepts:
///   --scale=<f>   fraction of the paper's |V| to build (default 0.25)
///   --trials=<n>  timing repetitions (default 5)
///   --full        paper scale (scale=1.0)
/// Default settings keep the whole harness to a few minutes on a laptop;
/// --full reproduces the paper's problem sizes exactly.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "graph/crs.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"

namespace parmis::bench {

struct Args {
  double scale = 0.25;
  int trials = 5;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const char* s = argv[i];
      if (!std::strncmp(s, "--scale=", 8)) {
        a.scale = std::atof(s + 8);
      } else if (!std::strncmp(s, "--trials=", 9)) {
        a.trials = std::atoi(s + 9);
      } else if (!std::strcmp(s, "--full")) {
        a.scale = 1.0;
      } else {
        std::fprintf(stderr, "usage: %s [--scale=F] [--trials=N] [--full]\n", argv[0]);
        std::exit(1);
      }
    }
    return a;
  }
};

/// Mean wall seconds of `f()` over `trials` runs after one warmup.
template <typename F>
double time_mean_s(int trials, F&& f) {
  f();  // warmup
  Timer t;
  for (int i = 0; i < trials; ++i) f();
  return t.seconds() / trials;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Loop-free adjacency of a registry surrogate at the given scale.
inline graph::CrsGraph build_adjacency(const graph::MatrixSpec& spec, double scale) {
  const graph::CrsMatrix m = spec.build(scale);
  return graph::remove_self_loops(graph::GraphView(m));
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace parmis::bench
