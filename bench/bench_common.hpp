#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the per-table/per-figure benchmark binaries.
///
/// Every binary accepts:
///   --scale=<f>     fraction of the paper's |V| to build (default 0.25)
///   --trials=<n>    timing repetitions (default 5)
///   --full          paper scale (scale=1.0)
///   --trace=FILE    record obs spans, write a Chrome trace on exit
///   --trace-sample=N  per-chunk span decimation (default 1)
/// Default settings keep the whole harness to a few minutes on a laptop;
/// --full reproduces the paper's problem sizes exactly.
///
/// Timing runs through the span API (`time_mean_s` wraps every trial in a
/// "bench.trial" span), so a traced bench shows its trial structure in the
/// same timeline as the kernels under test.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "graph/crs.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "obs/report.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parmis::bench {

struct Args {
  double scale = 0.25;
  int trials = 5;
  std::string trace_path;
  int trace_sample = 1;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const char* s = argv[i];
      if (!std::strncmp(s, "--scale=", 8)) {
        a.scale = std::atof(s + 8);
      } else if (!std::strncmp(s, "--trials=", 9)) {
        a.trials = std::atoi(s + 9);
      } else if (!std::strcmp(s, "--full")) {
        a.scale = 1.0;
      } else if (!std::strncmp(s, "--trace=", 8)) {
        a.trace_path = s + 8;
      } else if (!std::strncmp(s, "--trace-sample=", 15)) {
        a.trace_sample = std::atoi(s + 15);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--scale=F] [--trials=N] [--full] [--trace=FILE] "
                     "[--trace-sample=N]\n",
                     argv[0]);
        std::exit(1);
      }
    }
    if (!a.trace_path.empty()) obs::set_tracing(true, a.trace_sample);
    return a;
  }

  /// Bench epilogue: when --trace was given, stop tracing and write the
  /// Chrome trace file. Call once at the end of main.
  void finish_trace() const {
    if (trace_path.empty()) return;
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: %llu events -> %s\n",
                   static_cast<unsigned long long>(obs::total_events()), trace_path.c_str());
    }
  }
};

/// Mean wall seconds of `f()` over `trials` runs after one warmup. Each
/// timed trial is wrapped in a "bench.trial" span so traced runs show the
/// trial boundaries alongside the kernel spans.
template <typename F>
double time_mean_s(int trials, F&& f) {
  f();  // warmup
  Timer t;
  for (int i = 0; i < trials; ++i) {
    obs::Span trial("bench.trial");
    trial.arg("trial", i);
    f();
  }
  return t.seconds() / trials;
}

/// Minimum wall seconds of `f()` over `trials` runs after one warmup — the
/// noise-robust estimator for throughput comparisons: on a shared or
/// frequency-scaled machine a transient slowdown inflates the mean of
/// whichever arm it lands on, while the fastest observed trial tracks the
/// code's true cost. Same warmup and span structure as `time_mean_s`.
template <typename F>
double time_best_s(int trials, F&& f) {
  f();  // warmup
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < trials; ++i) {
    obs::Span trial("bench.trial");
    trial.arg("trial", i);
    Timer t;
    f();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

/// Wall seconds of a single `f()` call, recorded as a `name` span when
/// tracing is on. The shared replacement for the ad-hoc
/// `Timer t; f(); t.seconds()` pattern the table benches used to copy.
template <typename F>
double time_once_s(const char* name, F&& f) {
  obs::Span span(name);
  Timer t;
  f();
  return t.seconds();
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Loop-free adjacency of a registry surrogate at the given scale.
inline graph::CrsGraph build_adjacency(const graph::MatrixSpec& spec, double scale) {
  const graph::CrsMatrix m = spec.build(scale);
  return graph::remove_self_loops(graph::GraphView(m));
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace parmis::bench
