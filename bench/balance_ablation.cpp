/// \file balance_ablation.cpp
/// \brief Scheduling ablation: vertex-balanced (Static) vs edge-balanced
/// vs dynamic execution of the degree-shaped hot kernels (MIS-2, SpGEMM,
/// SpMV, MIS-2 coarsening) on uniform- and skewed-degree inputs.
///
/// Two measurements per (graph, kernel, schedule) cell:
///   - mean wall seconds over `--trials` warm runs (hardware-dependent);
///   - the *scheduler imbalance* of the kernel's cost array at the chosen
///     chunk count: max chunk cost / ideal chunk cost. This is a pure
///     function of the input and the partition — deterministic on any
///     machine, and the quantity edge balancing drives to ~1.0. On a
///     single-core host the wall clock cannot show a parallel win, so the
///     imbalance column is the portable evidence that EdgeBalanced beats
///     Static on skewed inputs (Static imbalance >> 1, EdgeBalanced ≈ 1).
///
/// Emits one JSON object per cell (stdout + `--out`, default
/// BENCH_balance_ablation.json), feeding the BENCH_*.json trajectory.
///
/// Usage: bench_balance_ablation [--scale=F] [--trials=N] [--threads=T]
///                               [--out=PATH]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/aggregation.hpp"
#include "core/coarsen.hpp"
#include "core/mis2.hpp"
#include "graph/generators.hpp"
#include "graph/rgg.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmv.hpp"
#include "obs/telemetry.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/execution.hpp"

namespace parmis {
namespace {

using par::Backend;
using par::Schedule;
using par::ScopedExecution;

struct Options {
  double scale = 0.25;
  int trials = 5;
  int threads = 0;  // 0 = max(4, hardware)
  std::string out = "BENCH_balance_ablation.json";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (!std::strncmp(s, "--scale=", 8)) {
      o.scale = std::atof(s + 8);
    } else if (!std::strncmp(s, "--trials=", 9)) {
      o.trials = std::atoi(s + 9);
    } else if (!std::strncmp(s, "--threads=", 10)) {
      o.threads = std::atoi(s + 10);
    } else if (!std::strncmp(s, "--out=", 6)) {
      o.out = s + 6;
    } else if (!std::strcmp(s, "--full")) {
      o.scale = 1.0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=F] [--trials=N] [--threads=T] [--out=PATH]\n", argv[0]);
      std::exit(1);
    }
  }
  return o;
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::EdgeBalanced: return "edge-balanced";
    case Schedule::Dynamic: return "dynamic";
  }
  return "?";
}

/// max chunk cost / ideal chunk cost for the partition the given schedule
/// would use on this cost prefix (Dynamic assigns chunks adaptively, so no
/// static imbalance is defined for it; report the Static split it starts
/// from).
double partition_imbalance(const std::vector<offset_t>& prefix, int nchunks, Schedule s) {
  const ordinal_t n = static_cast<ordinal_t>(prefix.size() - 1);
  if (n == 0 || nchunks <= 0) return 1.0;
  const double total = static_cast<double>(prefix[static_cast<std::size_t>(n)] - prefix[0]);
  if (total <= 0) return 1.0;
  const double ideal = total / nchunks;
  double worst = 0;
  for (int c = 0; c < nchunks; ++c) {
    ordinal_t lo, hi;
    if (s == Schedule::EdgeBalanced) {
      lo = par::balanced_chunk_bound(n, prefix.data(), nchunks, c);
      hi = par::balanced_chunk_bound(n, prefix.data(), nchunks, c + 1);
    } else {
      lo = static_cast<ordinal_t>((static_cast<std::int64_t>(n) * c) / nchunks);
      hi = static_cast<ordinal_t>((static_cast<std::int64_t>(n) * (c + 1)) / nchunks);
    }
    worst = std::max(worst, static_cast<double>(prefix[static_cast<std::size_t>(hi)] -
                                                prefix[static_cast<std::size_t>(lo)]));
  }
  return worst / ideal;
}

/// Degree cost prefix of a graph (cost of visiting row v = deg(v) + 1).
std::vector<offset_t> degree_prefix(graph::GraphView g) {
  std::vector<offset_t> p(static_cast<std::size_t>(g.num_rows) + 1, 0);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    p[static_cast<std::size_t>(v) + 1] =
        p[static_cast<std::size_t>(v)] + (g.row_map[v + 1] - g.row_map[v]) + 1;
  }
  return p;
}

/// Flop cost prefix of the product G·G (the SpGEMM work shape).
std::vector<offset_t> flop_prefix(graph::GraphView g) {
  std::vector<offset_t> p(static_cast<std::size_t>(g.num_rows) + 1, 0);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    offset_t w = 1;
    for (ordinal_t k : g.row(v)) w += g.row_map[k + 1] - g.row_map[k];
    p[static_cast<std::size_t>(v) + 1] = p[static_cast<std::size_t>(v)] + w;
  }
  return p;
}

struct Cell {
  std::string graph;
  std::string kernel;
  Schedule schedule;
  int threads;
  double seconds;
  double imbalance;
};

std::string to_json(const Cell& c, ordinal_t n, offset_t entries) {
  obs::Report report;
  report.set("bench", "balance_ablation");
  obs::add_graph(report, c.graph, n, entries);
  report.set("kernel", c.kernel);
  report.set("schedule", schedule_name(c.schedule));
  report.set("threads", c.threads);
  report.set("seconds", c.seconds);
  report.set("chunk_imbalance", c.imbalance);
  return report.to_json();
}

}  // namespace
}  // namespace parmis

int main(int argc, char** argv) {
  using namespace parmis;
  const Options opt = parse(argc, argv);
  const int threads = opt.threads > 0 ? opt.threads : std::max(4, par::Execution::max_threads());

  struct Input {
    std::string name;
    graph::CrsGraph g;
  };
  const ordinal_t grid = std::max<ordinal_t>(8, static_cast<ordinal_t>(30 * std::cbrt(opt.scale)));
  const ordinal_t nskew = std::max<ordinal_t>(2000, static_cast<ordinal_t>(120000 * opt.scale));
  const ordinal_t hubs = 48;
  std::vector<Input> inputs;
  inputs.push_back({"laplace3d_uniform",
                    graph::remove_self_loops(graph::GraphView(graph::laplace3d(grid, grid, grid)))});
  inputs.push_back({"rgg_uniform", graph::random_geometric_3d(nskew / 2, 12.0, 1)});
  {
    // Power-law degrees in random order (hubs scattered) and the same graph
    // degree-sorted (hubs clustered at low ids — the ordering real
    // web/social corpora commonly ship with, and the regime where
    // equal-count contiguous chunks collapse onto one thread).
    graph::CrsGraph pl =
        graph::power_law_graph(nskew, 2.2, 4, std::max<ordinal_t>(64, nskew / 60), 42);
    std::vector<ordinal_t> order(static_cast<std::size_t>(pl.num_rows));
    for (ordinal_t v = 0; v < pl.num_rows; ++v) order[static_cast<std::size_t>(v)] = v;
    std::stable_sort(order.begin(), order.end(), [&](ordinal_t a, ordinal_t b) {
      return pl.degree(a) > pl.degree(b);
    });
    std::vector<ordinal_t> new_id(order.size());
    for (ordinal_t rank = 0; rank < pl.num_rows; ++rank) {
      new_id[static_cast<std::size_t>(order[static_cast<std::size_t>(rank)])] = rank;
    }
    inputs.push_back({"power_law_sorted_skewed", graph::relabel(pl, new_id)});
    inputs.push_back({"power_law_scattered", std::move(pl)});
  }
  inputs.push_back({"star_hub_skewed",
                    graph::star_hub_graph(hubs, std::max<ordinal_t>(64, nskew / hubs))});

  obs::JsonArrayWriter out(opt.out);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
    return 1;
  }
  auto emit = [&](const Cell& c, ordinal_t n, offset_t e) {
    const std::string json = to_json(c, n, e);
    std::printf("%s\n", json.c_str());
    out.row(json);
  };

  std::printf("# balance_ablation: threads=%d trials=%d scale=%.3f (1 core visible to this "
              "host: wall times converge; chunk_imbalance is the portable signal)\n",
              threads, opt.trials, opt.scale);

  for (const Input& in : inputs) {
    const graph::CrsGraph& g = in.g;
    const graph::CrsMatrix m = graph::laplacian_matrix(g, 1.0);
    const std::vector<offset_t> deg_prefix = degree_prefix(g);
    const std::vector<offset_t> flops = flop_prefix(g);
    std::vector<scalar_t> x(static_cast<std::size_t>(g.num_rows), 1.0);
    std::vector<scalar_t> y(static_cast<std::size_t>(g.num_rows), 0.0);

    for (const Schedule sched : {Schedule::Static, Schedule::EdgeBalanced, Schedule::Dynamic}) {
      ScopedExecution scope(Backend::OpenMP, threads, sched);
      const int nchunks = par::balanced_chunk_count();
      const double deg_imb = partition_imbalance(deg_prefix, nchunks, sched);
      const double flop_imb = partition_imbalance(flops, nchunks, sched);

      core::Mis2Handle mis(Context::default_ctx());
      (void)mis.run(g);  // warm scratch
      const double mis_s = bench::time_mean_s(opt.trials, [&] { (void)mis.run(g); });
      emit({in.name, "mis2", sched, threads, mis_s, deg_imb}, g.num_rows, g.num_entries());

      const double spgemm_s =
          bench::time_mean_s(opt.trials, [&] { (void)graph::spgemm(m, m); });
      emit({in.name, "spgemm", sched, threads, spgemm_s, flop_imb}, g.num_rows,
           g.num_entries());

      const double spmv_s = bench::time_mean_s(opt.trials, [&] { graph::spmv(m, x, y); });
      emit({in.name, "spmv", sched, threads, spmv_s, deg_imb}, g.num_rows, g.num_entries());

      core::CoarsenHandle coarsen(Context::default_ctx());
      (void)coarsen.aggregate_mis2(g);  // warm scratch
      const double coarsen_s = bench::time_mean_s(opt.trials, [&] {
        const core::Aggregation& agg = coarsen.aggregate_mis2(g);
        (void)core::coarse_graph(g, agg);
      });
      emit({in.name, "coarsen", sched, threads, coarsen_s, deg_imb}, g.num_rows,
           g.num_entries());
    }
  }
  if (!out.close()) {
    std::fprintf(stderr, "write error on %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", opt.out.c_str());
  return 0;
}
