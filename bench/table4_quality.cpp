/// \file table4_quality.cpp
/// \brief Reproduces Table IV: MIS-2 set sizes across implementations
/// (higher is better; the claim is *parity*, not superiority).
///
/// Columns: Algorithm 1 (KK), the Bell reference (standing in for both
/// CUSP and ViennaCL, which implement that algorithm), and the serial
/// natural-order greedy. The paper's observation: all implementations land
/// within a fraction of a percent of each other.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bell_misk.hpp"
#include "core/mis2.hpp"
#include "core/serial_mis2.hpp"

int main(int argc, char** argv) {
  using namespace parmis;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Table IV: MIS-2 sizes across implementations (scale=%.2f)\n", args.scale);
  std::printf("%-18s %10s %12s %12s | %10s %10s\n", "matrix", "KK", "Bell(CUSP)", "greedy",
              "bell/KK", "greedy/KK");
  bench::print_rule(85);

  std::vector<double> bell_ratio, greedy_ratio;
  for (const graph::MatrixSpec& spec : graph::table2_matrices()) {
    const graph::CrsGraph g = bench::build_adjacency(spec, args.scale);
    const ordinal_t kk = core::mis2(g).set_size();
    const ordinal_t bell = core::bell_misk(g, 2).set_size();
    const ordinal_t greedy = core::serial_mis2(g).set_size();
    bell_ratio.push_back(static_cast<double>(bell) / kk);
    greedy_ratio.push_back(static_cast<double>(greedy) / kk);
    std::printf("%-18s %10d %12d %12d | %10.3f %10.3f\n", spec.name.c_str(), kk, bell, greedy,
                static_cast<double>(bell) / kk, static_cast<double>(greedy) / kk);
  }
  bench::print_rule(85);
  std::printf("%-18s %10s %12s %12s | %10.3f %10.3f   (geometric mean)\n", "GEOMEAN", "", "", "",
              bench::geomean(bell_ratio), bench::geomean(greedy_ratio));
  std::printf("\n(paper: KK / CUSP / ViennaCL sizes agree within ~1%% on every matrix)\n");
  return 0;
}
