/// \file test_baselines.cpp
/// \brief Tests for the comparator algorithms: Bell MIS-k, Luby MIS-1,
/// MIS-2 via squaring, and serial greedy MIS-2.

#include <gtest/gtest.h>

#include "core/bell_misk.hpp"
#include "core/luby_mis1.hpp"
#include "core/mis_spgemm.hpp"
#include "core/serial_mis2.hpp"
#include "core/verify.hpp"
#include "graph/ops.hpp"
#include "parallel/execution.hpp"
#include "test_utils.hpp"

namespace parmis::core {
namespace {

using test::NamedGraph;

TEST(BellMisk, ValidMis2OnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Mis2Result r = bell_misk(ng.g, 2);
    EXPECT_TRUE(verify_mis2(ng.g, r.in_set)) << ng.name;
  }
}

TEST(BellMisk, K1IsValidMis1) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Mis2Result r = bell_misk(ng.g, 1);
    EXPECT_TRUE(verify_mis1(ng.g, r.in_set)) << ng.name;
  }
}

TEST(BellMisk, K3IsDistance3Independent) {
  // No verifier for k=3; check independence by hand on a long path:
  // members must be >= 4 apart, and one must exist per 7 vertices.
  const ordinal_t n = 500;
  const Mis2Result r = bell_misk(test::path_graph(n), 3);
  ordinal_t prev = -100;
  for (ordinal_t v : r.members) {
    EXPECT_GE(v - prev, 4);
    prev = v;
  }
  EXPECT_GE(r.set_size(), n / 7);
}

TEST(BellMisk, DeterministicAcrossThreads) {
  const graph::CrsGraph g = graph::random_geometric_3d(3000, 12.0, 3);
  Mis2Result serial_r, parallel_r;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_r = bell_misk(g, 2);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_r = bell_misk(g, 2);
  }
  EXPECT_EQ(serial_r.members, parallel_r.members);
}

TEST(BellMisk, SeedVariesResult) {
  const graph::CrsGraph g = test::er_graph(200, 0.03, 17);
  const Mis2Result a = bell_misk(g, 2, 1);
  const Mis2Result b = bell_misk(g, 2, 2);
  EXPECT_TRUE(verify_mis2(g, a.in_set));
  EXPECT_TRUE(verify_mis2(g, b.in_set));
  // Different seeds almost surely give different (still valid) sets.
  EXPECT_NE(a.members, b.members);
}

TEST(LubyMis1, ValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Mis2Result r = luby_mis1(ng.g);
    EXPECT_TRUE(verify_mis1(ng.g, r.in_set)) << ng.name;
  }
}

TEST(LubyMis1, CliqueHasExactlyOne) {
  EXPECT_EQ(luby_mis1(test::complete_graph(12)).set_size(), 1);
}

TEST(LubyMis1, IndependentVerticesAllJoin) {
  EXPECT_EQ(luby_mis1(graph::graph_from_edges(7, {})).set_size(), 7);
}

TEST(LubyMis1, ConvergesInFewRounds) {
  const graph::CrsGraph g = graph::random_geometric_3d(20000, 10.0, 9);
  const Mis2Result r = luby_mis1(g);
  EXPECT_TRUE(verify_mis1(g, r.in_set));
  EXPECT_LE(r.iterations, 30);  // O(log n) expected
}

TEST(Mis2ViaSquaring, ValidMis2OnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Mis2Result r = mis2_via_squaring(ng.g);
    EXPECT_TRUE(verify_mis2(ng.g, r.in_set)) << ng.name;
  }
}

TEST(SerialMis2, ValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Mis2Result r = serial_mis2(ng.g);
    EXPECT_TRUE(verify_mis2(ng.g, r.in_set)) << ng.name;
  }
}

TEST(SerialMis2, GreedyPicksNaturalOrder) {
  // On a path the natural-order greedy takes 0, 3, 6, ...
  const Mis2Result r = serial_mis2(test::path_graph(10));
  EXPECT_EQ(r.members, (std::vector<ordinal_t>{0, 3, 6, 9}));
}

TEST(QualityParity, AllAlgorithmsProduceSimilarSizes) {
  // The Table IV claim: KK / CUSP(Bell) / greedy sizes agree closely.
  const graph::CrsGraph g = graph::random_geometric_3d(20000, 16.0, 123);
  const ordinal_t kk = mis2(g).set_size();
  const ordinal_t bell = bell_misk(g, 2).set_size();
  const ordinal_t greedy = serial_mis2(g).set_size();
  const ordinal_t squared = mis2_via_squaring(g).set_size();
  const double lo = 0.8 * greedy, hi = 1.25 * greedy;
  EXPECT_GT(kk, lo);
  EXPECT_LT(kk, hi);
  EXPECT_GT(bell, lo);
  EXPECT_LT(bell, hi);
  EXPECT_GT(squared, lo);
  EXPECT_LT(squared, hi);
}

}  // namespace
}  // namespace parmis::core
