/// \file test_status_tuple.cpp
/// \brief Property tests for the compressed status tuple (paper §V-C and
/// Eq. 1): round trips, ordering isomorphism, and IN/OUT non-collision.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "core/status_tuple.hpp"
#include "random/hash.hpp"

namespace parmis::core {
namespace {

TEST(TupleCodec, IdBitsFormula) {
  // b = ceil(log2(n + 2)).
  EXPECT_EQ(TupleCodec<std::uint32_t>(0).id_bits(), 1);
  EXPECT_EQ(TupleCodec<std::uint32_t>(1).id_bits(), 2);
  EXPECT_EQ(TupleCodec<std::uint32_t>(2).id_bits(), 2);
  EXPECT_EQ(TupleCodec<std::uint32_t>(6).id_bits(), 3);
  EXPECT_EQ(TupleCodec<std::uint32_t>(7).id_bits(), 4);   // 7+2 = 9 > 8
  EXPECT_EQ(TupleCodec<std::uint32_t>(14).id_bits(), 4);
  EXPECT_EQ(TupleCodec<std::uint32_t>(1000000).id_bits(), 20);
}

TEST(TupleCodec, StatusPredicatesDisjoint) {
  using C = TupleCodec<std::uint32_t>;
  EXPECT_TRUE(C::is_in(C::in_value));
  EXPECT_TRUE(C::is_out(C::out_value));
  EXPECT_FALSE(C::is_undecided(C::in_value));
  EXPECT_FALSE(C::is_undecided(C::out_value));
  EXPECT_TRUE(C::is_undecided(1));
}

class CodecProperty : public ::testing::TestWithParam<ordinal_t> {};

TEST_P(CodecProperty, PackNeverCollidesWithInOrOut) {
  // Eq. (1): for any priority and any valid id, the packed word differs
  // from both IN (0) and OUT (max).
  const ordinal_t n = GetParam();
  const TupleCodec<std::uint32_t> codec(n);
  const std::uint64_t priorities[] = {0ull, 1ull, ~0ull, 0x8000000000000000ull,
                                      rng::xorshift64star(12345)};
  const ordinal_t ids[] = {0, n / 2, n - 1};
  for (std::uint64_t p : priorities) {
    for (ordinal_t id : ids) {
      if (id < 0 || id >= n) continue;
      const std::uint32_t w = codec.pack(p, id);
      EXPECT_FALSE(TupleCodec<std::uint32_t>::is_in(w)) << n << " " << p << " " << id;
      EXPECT_FALSE(TupleCodec<std::uint32_t>::is_out(w)) << n << " " << p << " " << id;
    }
  }
}

TEST_P(CodecProperty, IdRoundTrips) {
  const ordinal_t n = GetParam();
  const TupleCodec<std::uint32_t> codec(n);
  for (ordinal_t id : {ordinal_t{0}, n / 3, n - 1}) {
    if (id < 0 || id >= n) continue;
    EXPECT_EQ(codec.id(codec.pack(0xDEADBEEFCAFEBABEull, id)), id);
  }
}

TEST_P(CodecProperty, OrderIsLexicographic) {
  // Packed comparison == (priority, id) lexicographic comparison, where
  // "priority" means the truncated high bits actually stored.
  const ordinal_t n = GetParam();
  if (n < 4) return;
  const TupleCodec<std::uint32_t> codec(n);
  rng::SplitMix64 gen(n);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t pa = gen.next(), pb = gen.next();
    const ordinal_t ia = static_cast<ordinal_t>(gen.next_below(static_cast<std::uint64_t>(n)));
    const ordinal_t ib = static_cast<ordinal_t>(gen.next_below(static_cast<std::uint64_t>(n)));
    const std::uint32_t wa = codec.pack(pa, ia);
    const std::uint32_t wb = codec.pack(pb, ib);
    const auto key = [&](std::uint64_t p, ordinal_t id) {
      return std::make_tuple(codec.priority(codec.pack(p, id)), id);
    };
    EXPECT_EQ(wa < wb, key(pa, ia) < key(pb, ib)) << pa << " " << pb << " " << ia << " " << ib;
  }
}

TEST_P(CodecProperty, DistinctIdsNeverTie) {
  const ordinal_t n = GetParam();
  if (n < 2) return;
  const TupleCodec<std::uint32_t> codec(n);
  // Same priority, different ids.
  EXPECT_NE(codec.pack(42, 0), codec.pack(42, 1));
  EXPECT_NE(codec.pack(~0ull, n - 2), codec.pack(~0ull, n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecProperty,
                         ::testing::Values(1, 2, 3, 6, 7, 100, 1023, 1024, 65536, 1000000,
                                           50000000));

TEST(TupleCodec, Wide64BitWordWorksToo) {
  const TupleCodec<std::uint64_t> codec(1000000);
  const std::uint64_t w = codec.pack(0xFFFFFFFFFFFFFFFFull, 999999);
  EXPECT_TRUE(TupleCodec<std::uint64_t>::is_undecided(w));
  EXPECT_EQ(codec.id(w), 999999);
  EXPECT_EQ(codec.priority_bits(), 64 - codec.id_bits());
}

TEST(WideTuple, LexicographicOrder) {
  EXPECT_LT(WideTuple::in(), WideTuple::undecided(0, 0));
  EXPECT_LT(WideTuple::undecided(~0ull, max_ordinal - 1), WideTuple::out());
  EXPECT_LT(WideTuple::undecided(0x1000000000000000ull, 5),
            WideTuple::undecided(0x2000000000000000ull, 1));
  // Equal priorities: id breaks the tie.
  EXPECT_LT(WideTuple::undecided(7ull << 32, 1), WideTuple::undecided(7ull << 32, 2));
}

TEST(WideTuple, EqualityIsFieldwise) {
  EXPECT_EQ(WideTuple::undecided(42ull << 32, 3), WideTuple::undecided(42ull << 32, 3));
  EXPECT_FALSE(WideTuple::undecided(42ull << 32, 3) == WideTuple::undecided(42ull << 32, 4));
}

}  // namespace
}  // namespace parmis::core
