/// \file test_partition_registry.cpp
/// \brief Tests for the pluggable partitioning subsystem: the registry,
/// the `Partitioner` run driver, the quality metrics, and backend
/// determinism of every registered algorithm.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/rgg.hpp"
#include "parallel/execution.hpp"
#include "partition/interface.hpp"
#include "partition/partitioner.hpp"
#include "test_utils.hpp"

namespace parmis::partition {
namespace {

WeightedGraph unit_of(const graph::CrsGraph& g) { return WeightedGraph::unit(g); }

TEST(PartitionerRegistry, ContainsTheCoreAlgorithms) {
  const std::vector<std::string> names = partitioner_names();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_GE(names.size(), 3u);
  EXPECT_TRUE(set.count("multilevel-mis2"));
  EXPECT_TRUE(set.count("multilevel-hem"));
  EXPECT_TRUE(set.count("ldg"));
  EXPECT_TRUE(set.count("lp-grow"));
  EXPECT_TRUE(set.count("block"));
  // Names are unique.
  EXPECT_EQ(set.size(), names.size());
}

TEST(PartitionerRegistry, SpecsAreComplete) {
  for (const PartitionerSpec& spec : partitioner_registry()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.description.empty());
    ASSERT_TRUE(spec.make != nullptr);
    const std::unique_ptr<Partitioner> p = spec.make();
    ASSERT_TRUE(p != nullptr);
    EXPECT_EQ(p->name(), spec.name);
  }
}

TEST(PartitionerRegistry, UnknownNameThrows) {
  EXPECT_THROW(find_partitioner("no-such-algorithm"), std::out_of_range);
  EXPECT_THROW(make_partitioner(""), std::out_of_range);
  EXPECT_NO_THROW(find_partitioner("multilevel-mis2"));
}

TEST(PartitionerRun, ValidLabelingAndStatsOnEveryAlgorithm) {
  const WeightedGraph wg = unit_of(graph::random_geometric_2d(1200, 7.0, 19));
  const ordinal_t k = 5;
  for (const PartitionerSpec& spec : partitioner_registry()) {
    const PartitionResult r = spec.make()->run(wg, k);
    ASSERT_EQ(r.part.size(), static_cast<std::size_t>(wg.graph.num_rows)) << spec.name;
    EXPECT_EQ(r.k, k) << spec.name;
    EXPECT_GE(r.seconds, 0.0) << spec.name;
    for (ordinal_t p : r.part) {
      ASSERT_GE(p, 0) << spec.name;
      ASSERT_LT(p, k) << spec.name;
    }
    // Quality agrees with the independent metric implementations.
    EXPECT_EQ(r.quality.edge_cut, cut_weight_kway(wg, r.part)) << spec.name;
    EXPECT_DOUBLE_EQ(r.quality.imbalance, imbalance_weighted(wg, r.part, k)) << spec.name;
    EXPECT_EQ(r.quality.k, k) << spec.name;
    EXPECT_EQ(r.quality.num_vertices, wg.graph.num_rows) << spec.name;
    EXPECT_GE(r.quality.boundary_fraction, 0.0) << spec.name;
    EXPECT_LE(r.quality.boundary_fraction, 1.0) << spec.name;
    // No algorithm should leave a part empty on a connected-ish graph this
    // large, and every algorithm respects a loose balance band.
    EXPECT_EQ(r.quality.empty_parts, 0) << spec.name;
    EXPECT_LT(r.quality.imbalance, 0.30) << spec.name;
  }
}

TEST(PartitionerRun, EmptyAndTrivialInputs) {
  for (const PartitionerSpec& spec : partitioner_registry()) {
    const PartitionResult empty = spec.make()->run(unit_of(graph::CrsGraph{}), 4);
    EXPECT_TRUE(empty.part.empty()) << spec.name;

    const PartitionResult single =
        spec.make()->run(unit_of(graph::graph_from_edges(1, {})), 1);
    ASSERT_EQ(single.part.size(), 1u) << spec.name;
    EXPECT_EQ(single.part[0], 0) << spec.name;

    const PartitionResult k1 =
        spec.make()->run(unit_of(test::path_graph(10)), 1);
    for (ordinal_t p : k1.part) EXPECT_EQ(p, 0) << spec.name;
    EXPECT_EQ(k1.quality.edge_cut, 0) << spec.name;
  }
}

TEST(Quality, HandCheckedPathGraph) {
  // Path 0-1-2-3 split {0,1} | {2,3}: one cut edge, two boundary vertices,
  // each boundary vertex talks to exactly one remote part.
  const WeightedGraph wg = unit_of(test::path_graph(4));
  const std::vector<ordinal_t> part = {0, 0, 1, 1};
  const QualityReport q = evaluate_partition(wg, part, 2);
  EXPECT_EQ(q.num_vertices, 4);
  EXPECT_EQ(q.num_edges, 3);
  EXPECT_EQ(q.edge_cut, 1);
  EXPECT_EQ(q.comm_volume, 2);
  EXPECT_EQ(q.boundary_vertices, 2);
  EXPECT_DOUBLE_EQ(q.boundary_fraction, 0.5);
  EXPECT_EQ(q.max_part_weight, 2);
  EXPECT_EQ(q.min_part_weight, 2);
  EXPECT_EQ(q.empty_parts, 0);
  EXPECT_DOUBLE_EQ(q.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(q.cut_fraction(), 1.0 / 3.0);
}

TEST(Quality, HandCheckedStarGraph) {
  // Star with hub 0 and 4 leaves; hub alone in part 0. Every edge is cut;
  // the hub talks to one remote part, each leaf to one.
  const WeightedGraph wg = unit_of(test::star_graph(4));
  const std::vector<ordinal_t> part = {0, 1, 1, 1, 1};
  const QualityReport q = evaluate_partition(wg, part, 2);
  EXPECT_EQ(q.edge_cut, 4);
  EXPECT_EQ(q.boundary_vertices, 5);
  EXPECT_DOUBLE_EQ(q.boundary_fraction, 1.0);
  EXPECT_EQ(q.comm_volume, 5);  // hub sees part 1; each leaf sees part 0
  EXPECT_EQ(q.max_part_weight, 4);
  EXPECT_EQ(q.min_part_weight, 1);
  EXPECT_DOUBLE_EQ(q.imbalance, 4.0 / 2.5 - 1.0);
}

TEST(Quality, HandCheckedThreeWayWithEmptyPart) {
  // Triangle all in part 0 of k=3: no cut, two empty parts.
  const WeightedGraph wg = unit_of(test::complete_graph(3));
  const std::vector<ordinal_t> part = {0, 0, 0};
  const QualityReport q = evaluate_partition(wg, part, 3);
  EXPECT_EQ(q.edge_cut, 0);
  EXPECT_EQ(q.comm_volume, 0);
  EXPECT_EQ(q.boundary_vertices, 0);
  EXPECT_EQ(q.empty_parts, 2);
  EXPECT_DOUBLE_EQ(q.imbalance, 2.0);  // 3 / 1 - 1
}

TEST(Quality, RespectsEdgeWeights) {
  // Path 0-1-2 with a heavy (0,1) edge; split {0} | {1,2} cuts it.
  WeightedGraph wg = unit_of(test::path_graph(3));
  for (std::size_t j = 0; j < wg.graph.entries.size(); ++j) {
    const ordinal_t v = wg.graph.entries[j];
    // Entries of vertex 0 and entry back to 0 form edge (0,1).
    if ((j < static_cast<std::size_t>(wg.graph.row_map[1]) && v == 1) || v == 0) {
      wg.edge_weight[j] = 7;
    }
  }
  const std::vector<ordinal_t> part = {0, 1, 1};
  const QualityReport q = evaluate_partition(wg, part, 2);
  EXPECT_EQ(q.edge_cut, 7);
  // cut_fraction is weighted: 7 of 8 total edge weight, not 1 of 2 edges.
  EXPECT_EQ(q.total_edge_weight, 8);
  EXPECT_DOUBLE_EQ(q.cut_fraction(), 7.0 / 8.0);
}

TEST(PartitionerRun, RejectsNonPositiveK) {
  const WeightedGraph wg = unit_of(test::path_graph(8));
  for (const PartitionerSpec& spec : partitioner_registry()) {
    EXPECT_THROW((void)spec.make()->run(wg, 0), std::invalid_argument) << spec.name;
    EXPECT_THROW((void)spec.make()->run(wg, -3), std::invalid_argument) << spec.name;
  }
  EXPECT_THROW((void)partition_weighted(wg, 0), std::invalid_argument);
}

TEST(Quality, JsonOutputContainsAllKeys) {
  const WeightedGraph wg = unit_of(test::path_graph(4));
  const QualityReport q = evaluate_partition(wg, {{0, 0, 1, 1}}, 2);
  const std::string json = q.to_json();
  for (const char* key :
       {"\"k\":", "\"num_vertices\":", "\"num_edges\":", "\"total_edge_weight\":",
        "\"edge_cut\":", "\"cut_fraction\":",
        "\"comm_volume\":", "\"boundary_vertices\":", "\"boundary_fraction\":",
        "\"max_part_weight\":", "\"min_part_weight\":", "\"empty_parts\":", "\"imbalance\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

/// Mirrors Partition.DeterministicAcrossThreads (test_partition.cpp): every
/// registered partitioner must produce a bit-identical labeling on the
/// Serial backend and on OpenMP at several thread counts.
TEST(PartitionerDeterminism, SerialVsOpenMpAllAlgorithms) {
  const WeightedGraph wg = unit_of(graph::random_geometric_3d(3000, 10.0, 29));
  const ordinal_t k = 4;
  for (const PartitionerSpec& spec : partitioner_registry()) {
    PartitionResult serial_r;
    {
      par::ScopedExecution scope(par::Backend::Serial, 1);
      serial_r = spec.make()->run(wg, k);
    }
    for (int threads : {0, 2, 3}) {
      par::ScopedExecution scope(par::Backend::OpenMP, threads);
      const PartitionResult parallel_r = spec.make()->run(wg, k);
      EXPECT_EQ(serial_r.part, parallel_r.part)
          << spec.name << " with " << threads << " threads";
      EXPECT_EQ(serial_r.quality.edge_cut, parallel_r.quality.edge_cut) << spec.name;
      EXPECT_EQ(serial_r.quality.comm_volume, parallel_r.quality.comm_volume) << spec.name;
    }
  }
}

TEST(PartitionerDeterminism, RepeatedRunsAreIdentical) {
  const WeightedGraph wg = unit_of(test::adjacency_of(graph::laplace2d(25, 25)));
  for (const PartitionerSpec& spec : partitioner_registry()) {
    const PartitionResult a = spec.make()->run(wg, 6);
    const PartitionResult b = spec.make()->run(wg, 6);
    EXPECT_EQ(a.part, b.part) << spec.name;
  }
}

TEST(PartitionWeighted, NullGraphViewIsSafe) {
  // A default-constructed view has null row_map/entries; the unit() deep
  // copy must not touch them.
  const Partition p = partition_graph(graph::GraphView{}, 4);
  EXPECT_TRUE(p.part.empty());
  const QualityReport q = evaluate_partition(graph::GraphView{}, {}, 4);
  EXPECT_EQ(q.num_vertices, 0);
  EXPECT_EQ(q.edge_cut, 0);
}

TEST(PartitionWeighted, LabelsOnlyMatchesFullEntryPoint) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(18, 18));
  const WeightedGraph wg = WeightedGraph::unit(g);
  EXPECT_EQ(partition_labels_weighted(wg, 5), partition_weighted(wg, 5).part);
}

TEST(PartitionWeighted, MatchesUnweightedOnUnitWeights) {
  const graph::CrsGraph g = graph::random_geometric_2d(2000, 7.0, 31);
  const Partition a = partition_graph(g, 4);
  const Partition b = partition_weighted(WeightedGraph::unit(g), 4);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
  EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance);
}

TEST(PartitionWeighted, KwayCutAgreesWithUnweightedCount) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(20, 20));
  const WeightedGraph wg = WeightedGraph::unit(g);
  const Partition p = partition_weighted(wg, 3);
  EXPECT_EQ(p.edge_cut, edge_cut(g, p.part));
}

}  // namespace
}  // namespace parmis::partition
