/// \file test_balanced_for.cpp
/// \brief Tests for the cost-aware scheduling layer: chunk-boundary
/// properties of `balanced_chunk_bound`, exactly-once coverage of
/// `balanced_for` under every schedule, the balanced reductions, the
/// single-pass SpGEMM (equivalence against the historical two-pass
/// reference plus the traversal-counter regression guard), and the
/// parallel transpose.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "core/mis2.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmv.hpp"
#include "parallel/balanced_for.hpp"
#include "parallel/context.hpp"
#include "parallel/execution.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

using par::Backend;
using par::Execution;
using par::Schedule;
using par::ScopedExecution;

/// Prefix-sum a cost-per-index vector into the (n+1)-entry prefix array
/// balanced_chunk_bound consumes.
std::vector<offset_t> prefix_of(const std::vector<offset_t>& costs) {
  std::vector<offset_t> p(costs.size() + 1, 0);
  std::partial_sum(costs.begin(), costs.end(), p.begin() + 1);
  return p;
}

/// All boundaries of the nchunks-way partition, [b_0 .. b_nchunks].
std::vector<ordinal_t> bounds_of(const std::vector<offset_t>& prefix, int nchunks) {
  const ordinal_t n = static_cast<ordinal_t>(prefix.size() - 1);
  std::vector<ordinal_t> b;
  for (int t = 0; t <= nchunks; ++t) {
    b.push_back(par::balanced_chunk_bound(n, prefix.data(), nchunks, t));
  }
  return b;
}

/// Every partition must be a contiguous, ascending cover of [0, n).
void expect_valid_partition(const std::vector<ordinal_t>& b, ordinal_t n) {
  ASSERT_GE(b.size(), 2u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), n);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LE(b[i - 1], b[i]) << i;
}

TEST(BalancedChunkBound, AllEqualCostsMatchesUniformSplit) {
  const std::vector<offset_t> prefix = prefix_of(std::vector<offset_t>(100, 5));
  const std::vector<ordinal_t> b = bounds_of(prefix, 4);
  expect_valid_partition(b, 100);
  EXPECT_EQ(b, (std::vector<ordinal_t>{0, 25, 50, 75, 100}));
}

TEST(BalancedChunkBound, OneGiantRowEndsItsChunk) {
  // Row 10 carries ~all the cost. Its chunk must close immediately after
  // it — the cheap tail [11, 40) must not pile onto the hub's chunk.
  std::vector<offset_t> costs(40, 1);
  costs[10] = 10000;
  const std::vector<offset_t> prefix = prefix_of(costs);
  const std::vector<ordinal_t> b = bounds_of(prefix, 4);
  expect_valid_partition(b, 40);
  int owner = -1;
  for (int c = 0; c < 4; ++c) {
    if (b[c] <= 10 && 10 < b[c + 1]) owner = c;
  }
  ASSERT_NE(owner, -1);
  EXPECT_EQ(b[owner + 1], 11) << "giant row should end its chunk";
  // Every per-chunk target lands inside the giant row, so it absorbs the
  // middle boundaries: only the first chunk holds it, the last holds the
  // tail.
  EXPECT_EQ(b, (std::vector<ordinal_t>{0, 11, 11, 11, 40}));
}

TEST(BalancedChunkBound, EmptyRowsAttachRight) {
  // Zero-cost rows between two heavy rows go with the chunk that starts at
  // the next costly row; trailing empties still reach the last chunk.
  std::vector<offset_t> costs{8, 0, 0, 0, 8, 0, 0};
  const std::vector<offset_t> prefix = prefix_of(costs);
  const std::vector<ordinal_t> b = bounds_of(prefix, 2);
  expect_valid_partition(b, 7);
  // Half the total (8) is reached at index 1... the first index whose
  // prefix >= 8 is row 1, so chunk 0 = [0,1), chunk 1 = [1,7).
  EXPECT_EQ(b[1], 1);
}

TEST(BalancedChunkBound, ZeroTotalCostFallsBackToUniform) {
  const std::vector<offset_t> prefix(31, 0);  // 30 rows, all cost 0
  const std::vector<ordinal_t> b = bounds_of(prefix, 3);
  EXPECT_EQ(b, (std::vector<ordinal_t>{0, 10, 20, 30}));
}

TEST(BalancedChunkBound, MoreChunksThanRows) {
  const std::vector<offset_t> prefix = prefix_of({3, 3});
  const std::vector<ordinal_t> b = bounds_of(prefix, 8);
  expect_valid_partition(b, 2);
}

TEST(BalancedChunkBound, BoundariesDependOnlyOnCosts) {
  // Same cost array, any thread configuration: identical boundaries.
  std::vector<offset_t> costs(1000);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = static_cast<offset_t>((i * 37) % 101);
  }
  const std::vector<offset_t> prefix = prefix_of(costs);
  const std::vector<ordinal_t> ref = bounds_of(prefix, 6);
  for (int threads : {1, 2, 5}) {
    ScopedExecution scope(Backend::OpenMP, threads);
    EXPECT_EQ(bounds_of(prefix, 6), ref) << threads;
  }
}

class BalancedForSchedule : public ::testing::TestWithParam<Schedule> {};

TEST_P(BalancedForSchedule, CoversEveryIndexOnce) {
  std::vector<offset_t> costs(20000);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = static_cast<offset_t>(i % 400 == 0 ? 5000 : 1);  // skewed
  }
  const std::vector<offset_t> prefix = prefix_of(costs);
  const std::pair<Backend, int> cfgs[] = {
      {Backend::Serial, 1}, {Backend::OpenMP, 3}, {Backend::OpenMP, 0}};
  for (auto [backend, threads] : cfgs) {
    ScopedExecution scope(backend, threads, GetParam());
    std::vector<int> hits(costs.size(), 0);
    par::balanced_for(static_cast<ordinal_t>(costs.size()), prefix.data(),
                      [&](ordinal_t i) { ++hits[static_cast<std::size_t>(i)]; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }))
        << "backend=" << static_cast<int>(backend) << " threads=" << threads;
  }
}

TEST_P(BalancedForSchedule, NullPrefixAndEmptyRange) {
  ScopedExecution scope(Backend::OpenMP, 2, GetParam());
  int count = 0;
  par::balanced_for(ordinal_t{0}, static_cast<const offset_t*>(nullptr),
                    [&](ordinal_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::vector<int> hits(5000, 0);
  par::balanced_for(ordinal_t{5000}, static_cast<const offset_t*>(nullptr),
                    [&](ordinal_t i) { ++hits[static_cast<std::size_t>(i)]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

INSTANTIATE_TEST_SUITE_P(Schedules, BalancedForSchedule,
                         ::testing::Values(Schedule::Static, Schedule::EdgeBalanced,
                                           Schedule::Dynamic));

TEST(BalancedChunks, ChunkIdsWithinCountAndDisjoint) {
  ScopedExecution scope(Backend::OpenMP, 4, Schedule::EdgeBalanced);
  std::vector<offset_t> costs(10000, 1);
  costs[0] = 100000;
  const std::vector<offset_t> prefix = prefix_of(costs);
  const int nc = par::balanced_chunk_count();
  std::vector<int> owner(costs.size(), -1);
  par::balanced_chunks(static_cast<ordinal_t>(costs.size()), prefix.data(),
                       [&](int chunk, ordinal_t lo, ordinal_t hi) {
                         ASSERT_GE(chunk, 0);
                         ASSERT_LT(chunk, nc);
                         for (ordinal_t i = lo; i < hi; ++i) {
                           owner[static_cast<std::size_t>(i)] = chunk;
                         }
                       });
  EXPECT_TRUE(std::all_of(owner.begin(), owner.end(), [](int o) { return o >= 0; }));
  // Ascending chunk ids over ascending indices (contiguous partition).
  EXPECT_TRUE(std::is_sorted(owner.begin(), owner.end()));
}

TEST(BalancedReduce, IntegralSumMatchesSerialUnderAllConfigs) {
  std::vector<offset_t> costs(30000);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = static_cast<offset_t>((i * 13) % 97);
  }
  const std::vector<offset_t> prefix = prefix_of(costs);
  const ordinal_t n = static_cast<ordinal_t>(costs.size());
  auto f = [&](ordinal_t i) -> std::int64_t { return costs[static_cast<std::size_t>(i)] * 3 + 1; };
  std::int64_t expected = 0;
  for (ordinal_t i = 0; i < n; ++i) expected += f(i);
  for (Schedule s : {Schedule::Static, Schedule::EdgeBalanced}) {
    const std::pair<Backend, int> cfgs[] = {
        {Backend::Serial, 1}, {Backend::OpenMP, 2}, {Backend::OpenMP, 0}};
    for (auto [backend, threads] : cfgs) {
      ScopedExecution scope(backend, threads, s);
      EXPECT_EQ(par::balanced_reduce_sum<std::int64_t>(n, prefix.data(), f), expected);
      EXPECT_EQ(par::balanced_count_if(n, prefix.data(),
                                       [&](ordinal_t i) { return f(i) % 2 == 0; }),
                std::count_if(costs.begin(), costs.end(),
                              [](offset_t c) { return (c * 3 + 1) % 2 == 0; }));
    }
  }
}

// ---------------------------------------------------------------- SpGEMM

/// The historical two-pass SpGEMM, kept as the equivalence reference: a
/// dense-accumulator pass with identical per-row accumulation order, so
/// the fused kernel must match it bit-for-bit (entries *and* values).
graph::CrsMatrix spgemm_two_pass_reference(const graph::CrsMatrix& a,
                                           const graph::CrsMatrix& b) {
  graph::CrsMatrix c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_map.assign(static_cast<std::size_t>(a.num_rows) + 1, 0);
  std::vector<scalar_t> acc(static_cast<std::size_t>(b.num_cols), 0);
  std::vector<char> seen(static_cast<std::size_t>(b.num_cols), 0);
  std::vector<ordinal_t> touched;
  auto accumulate_row = [&](ordinal_t i) {
    touched.clear();
    for (offset_t ja = a.row_map[i]; ja < a.row_map[i + 1]; ++ja) {
      const ordinal_t k = a.entries[static_cast<std::size_t>(ja)];
      const scalar_t av = a.values[static_cast<std::size_t>(ja)];
      for (offset_t jb = b.row_map[k]; jb < b.row_map[k + 1]; ++jb) {
        const ordinal_t j = b.entries[static_cast<std::size_t>(jb)];
        const scalar_t bv = b.values[static_cast<std::size_t>(jb)];
        if (!seen[static_cast<std::size_t>(j)]) {
          seen[static_cast<std::size_t>(j)] = 1;
          acc[static_cast<std::size_t>(j)] = av * bv;
          touched.push_back(j);
        } else {
          acc[static_cast<std::size_t>(j)] += av * bv;
        }
      }
    }
  };
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    accumulate_row(i);
    c.row_map[static_cast<std::size_t>(i) + 1] =
        c.row_map[static_cast<std::size_t>(i)] + static_cast<offset_t>(touched.size());
    for (ordinal_t j : touched) seen[static_cast<std::size_t>(j)] = 0;
  }
  c.entries.resize(static_cast<std::size_t>(c.row_map.back()));
  c.values.resize(static_cast<std::size_t>(c.row_map.back()));
  for (ordinal_t i = 0; i < a.num_rows; ++i) {  // the redundant second pass
    accumulate_row(i);
    std::sort(touched.begin(), touched.end());
    offset_t o = c.row_map[i];
    for (ordinal_t j : touched) {
      c.entries[static_cast<std::size_t>(o)] = j;
      c.values[static_cast<std::size_t>(o)] = acc[static_cast<std::size_t>(j)];
      ++o;
      seen[static_cast<std::size_t>(j)] = 0;
    }
  }
  return c;
}

graph::CrsMatrix skewed_test_matrix() {
  const graph::CrsGraph g = graph::power_law_graph(900, 2.2, 2, 150, 3);
  return graph::laplacian_matrix(g, 0.5);
}

TEST(SpgemmFused, MatchesTwoPassReferenceBitExactly) {
  const graph::CrsMatrix a = skewed_test_matrix();
  const graph::CrsMatrix ref = spgemm_two_pass_reference(a, a);
  for (Schedule s : {Schedule::Static, Schedule::EdgeBalanced, Schedule::Dynamic}) {
    const std::pair<Backend, int> cfgs[] = {
        {Backend::Serial, 1}, {Backend::OpenMP, 3}, {Backend::OpenMP, 0}};
    for (auto [backend, threads] : cfgs) {
      ScopedExecution scope(backend, threads, s);
      const graph::CrsMatrix c = graph::spgemm(a, a);
      EXPECT_EQ(c.row_map, ref.row_map);
      EXPECT_EQ(c.entries, ref.entries);
      EXPECT_EQ(c.values, ref.values);  // bit-exact: same accumulation order
    }
  }
}

TEST(SpgemmFused, SymbolicMatchesNumericPattern) {
  const graph::CrsMatrix a = skewed_test_matrix();
  ScopedExecution scope(Backend::OpenMP, 0, Schedule::EdgeBalanced);
  const graph::CrsMatrix c = graph::spgemm(a, a);
  const graph::CrsGraph pattern = graph::spgemm_symbolic(a, a);
  EXPECT_EQ(pattern.row_map, c.row_map);
  EXPECT_EQ(pattern.entries, c.entries);
}

TEST(SpgemmFused, SinglePassTraversalCounter) {
  const graph::CrsMatrix a = skewed_test_matrix();
  const std::pair<Backend, int> cfgs[] = {{Backend::Serial, 1}, {Backend::OpenMP, 0}};
  for (auto [backend, threads] : cfgs) {
    ScopedExecution scope(backend, threads, Schedule::EdgeBalanced);
    graph::spgemm_reset_stats();
    (void)graph::spgemm(a, a);
    // One inner product per output row — the two-pass kernel would report
    // 2 * num_rows here.
    EXPECT_EQ(graph::spgemm_rows_traversed(), a.num_rows);
    graph::spgemm_reset_stats();
    (void)graph::spgemm_symbolic(a, a);
    EXPECT_EQ(graph::spgemm_rows_traversed(), a.num_rows);
  }
}

TEST(TransposeParallel, MatchesSerialReferenceAcrossConfigs) {
  const graph::CrsMatrix a = skewed_test_matrix();
  // Reference: the classical serial counting sort.
  graph::CrsMatrix ref;
  {
    ScopedExecution scope(Backend::Serial, 1);
    ref = graph::transpose_matrix(a);
  }
  // Transpose of a symmetric matrix is itself — sanity on the reference.
  EXPECT_EQ(ref.row_map, a.row_map);
  EXPECT_EQ(ref.entries, a.entries);
  for (Schedule s : {Schedule::Static, Schedule::EdgeBalanced}) {
    for (int threads : {2, 3, 0}) {
      ScopedExecution scope(Backend::OpenMP, threads, s);
      const graph::CrsMatrix t = graph::transpose_matrix(a);
      EXPECT_EQ(t.row_map, ref.row_map);
      EXPECT_EQ(t.entries, ref.entries);
      EXPECT_EQ(t.values, ref.values);
    }
  }
}

TEST(TransposeParallel, RectangularAndEmpty) {
  // Rectangular: 3x5 with a dense-ish pattern, checked by hand via COO.
  std::vector<graph::Triplet> trips{{0, 4, 1.0}, {0, 0, 2.0}, {1, 2, 3.0},
                                    {2, 2, 4.0}, {2, 3, 5.0}};
  const graph::CrsMatrix a = graph::matrix_from_coo(3, 5, trips);
  ScopedExecution scope(Backend::OpenMP, 0, Schedule::EdgeBalanced);
  const graph::CrsMatrix t = graph::transpose_matrix(a);
  EXPECT_EQ(t.num_rows, 5);
  EXPECT_EQ(t.num_cols, 3);
  std::multimap<std::pair<ordinal_t, ordinal_t>, scalar_t> expect;
  for (const auto& tr : trips) expect.insert({{tr.col, tr.row}, tr.value});
  for (ordinal_t i = 0; i < t.num_rows; ++i) {
    for (offset_t j = t.row_map[i]; j < t.row_map[i + 1]; ++j) {
      const auto it = expect.find({i, t.entries[static_cast<std::size_t>(j)]});
      ASSERT_NE(it, expect.end());
      EXPECT_DOUBLE_EQ(it->second, t.values[static_cast<std::size_t>(j)]);
    }
  }
  EXPECT_EQ(t.num_entries(), static_cast<offset_t>(trips.size()));

  const graph::CrsMatrix none = graph::transpose_matrix(graph::CrsMatrix{});
  EXPECT_EQ(none.num_rows, 0);
  EXPECT_EQ(none.num_entries(), 0);
}

// ------------------------------------------------------- schedule results

TEST(ScheduleInvariance, Mis2AndSpmvIdenticalUnderStaticAndEdgeBalanced) {
  const graph::CrsGraph g = graph::power_law_graph(3000, 2.2, 3, 300, 21);
  const graph::CrsMatrix m = graph::laplacian_matrix(g, 1.0);
  std::vector<scalar_t> x(static_cast<std::size_t>(m.num_rows));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 / static_cast<double>(i + 1);

  std::vector<ordinal_t> ref_members;
  std::vector<scalar_t> ref_y;
  bool first = true;
  for (Schedule s : {Schedule::Static, Schedule::EdgeBalanced}) {
    const std::pair<Backend, int> cfgs[] = {
        {Backend::Serial, 1}, {Backend::OpenMP, 2}, {Backend::OpenMP, 0}};
    for (auto [backend, threads] : cfgs) {
      Context ctx;
      ctx.backend = backend;
      ctx.num_threads = threads;
      ctx.schedule = s;
      core::Mis2Handle handle(ctx);
      const std::vector<ordinal_t> members = handle.run(g).members;
      std::vector<scalar_t> y(x.size(), 0);
      {
        Context::Scope scope(ctx);
        graph::spmv(m, x, y);
      }
      if (first) {
        ref_members = members;
        ref_y = y;
        first = false;
      } else {
        EXPECT_EQ(members, ref_members)
            << "schedule=" << static_cast<int>(s) << " threads=" << threads;
        EXPECT_EQ(y, ref_y) << "schedule=" << static_cast<int>(s) << " threads=" << threads;
      }
    }
  }
}

TEST(ScheduleContext, DefaultCtxSnapshotsAndScopePins) {
  EXPECT_EQ(Context{}.schedule, Schedule::EdgeBalanced);
  {
    ScopedExecution outer(Backend::Serial, 1, Schedule::Static);
    EXPECT_EQ(Context::default_ctx().schedule, Schedule::Static);
    Context ctx;
    ctx.schedule = Schedule::Dynamic;
    {
      Context::Scope scope(ctx);
      EXPECT_EQ(Execution::schedule(), Schedule::Dynamic);
    }
    EXPECT_EQ(Execution::schedule(), Schedule::Static);  // restored
  }
}

}  // namespace
}  // namespace parmis
