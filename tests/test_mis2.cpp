/// \file test_mis2.cpp
/// \brief Validity, determinism, and option-matrix tests for Algorithm 1.

#include <gtest/gtest.h>

#include <tuple>

#include "core/mis2.hpp"
#include "core/mis_spgemm.hpp"
#include "core/serial_mis2.hpp"
#include "core/verify.hpp"
#include "graph/ops.hpp"
#include "parallel/execution.hpp"
#include "parallel/simd.hpp"
#include "test_utils.hpp"

namespace parmis::core {
namespace {

using test::NamedGraph;

/// All 2x2x2x3 combinations of the four §V optimizations.
std::vector<Mis2Options> option_matrix() {
  std::vector<Mis2Options> out;
  for (PriorityScheme scheme :
       {PriorityScheme::Fixed, PriorityScheme::Xorshift, PriorityScheme::XorshiftStar}) {
    for (bool worklists : {false, true}) {
      for (bool packed : {false, true}) {
        for (bool simd : {false, true}) {
          Mis2Options o;
          o.priority = scheme;
          o.use_worklists = worklists;
          o.packed_tuples = packed;
          o.simd = simd;
          out.push_back(o);
        }
      }
    }
  }
  return out;
}

class Mis2Family : public ::testing::TestWithParam<int> {
 protected:
  static const NamedGraph& graph() {
    static const std::vector<NamedGraph> fam = test::test_graph_family();
    return fam[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(Mis2Family, DefaultOptionsProduceValidMis2) {
  const NamedGraph& ng = graph();
  const Mis2Result r = mis2(ng.g);
  EXPECT_TRUE(verify_mis2(ng.g, r.in_set)) << ng.name;
  EXPECT_EQ(static_cast<ordinal_t>(r.members.size()),
            std::count(r.in_set.begin(), r.in_set.end(), 1))
      << ng.name;
}

TEST_P(Mis2Family, EveryOptionComboIsValid) {
  const NamedGraph& ng = graph();
  for (const Mis2Options& opts : option_matrix()) {
    const Mis2Result r = mis2(ng.g, opts);
    EXPECT_TRUE(verify_mis2(ng.g, r.in_set))
        << ng.name << " scheme=" << static_cast<int>(opts.priority)
        << " wl=" << opts.use_worklists << " packed=" << opts.packed_tuples
        << " simd=" << opts.simd;
  }
}

TEST_P(Mis2Family, MembersSortedAndConsistent) {
  const NamedGraph& ng = graph();
  const Mis2Result r = mis2(ng.g);
  EXPECT_TRUE(std::is_sorted(r.members.begin(), r.members.end()));
  for (ordinal_t v : r.members) {
    EXPECT_TRUE(r.in_set[static_cast<std::size_t>(v)]);
  }
}

TEST_P(Mis2Family, SeedsChangeButStayValid) {
  const NamedGraph& ng = graph();
  for (std::uint64_t seed : {1ull, 99ull, 0xFFFFFFFFull}) {
    Mis2Options opts;
    opts.seed = seed;
    const Mis2Result r = mis2(ng.g, opts);
    EXPECT_TRUE(verify_mis2(ng.g, r.in_set)) << ng.name << " seed " << seed;
  }
}

TEST_P(Mis2Family, SizeWithinSerialGreedyBand) {
  // MIS-2 sizes from different valid algorithms are close (Table IV shows
  // parity across implementations); enforce a generous 2x band against the
  // serial greedy answer (both are maximal, so neither can be more than
  // the other's domination bound apart — 2x is safely loose for these
  // families).
  const NamedGraph& ng = graph();
  if (ng.g.num_rows == 0) return;
  const Mis2Result parallel_result = mis2(ng.g);
  const Mis2Result greedy = serial_mis2(ng.g);
  EXPECT_LE(parallel_result.set_size(), 2 * std::max<ordinal_t>(1, greedy.set_size())) << ng.name;
  EXPECT_GE(2 * std::max<ordinal_t>(1, parallel_result.set_size()), greedy.set_size()) << ng.name;
}

INSTANTIATE_TEST_SUITE_P(Family, Mis2Family,
                         ::testing::Range(0, static_cast<int>(test::test_graph_family().size())),
                         [](const ::testing::TestParamInfo<int>& info) {
                           static const auto fam = test::test_graph_family();
                           return fam[static_cast<std::size_t>(info.param)].name;
                         });

TEST(Mis2, EmptyGraph) {
  const Mis2Result r = mis2(graph::CrsGraph{});
  EXPECT_EQ(r.set_size(), 0);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Mis2, SingleVertexIsIn) {
  const Mis2Result r = mis2(test::path_graph(1));
  EXPECT_EQ(r.set_size(), 1);
  EXPECT_EQ(r.members[0], 0);
}

TEST(Mis2, IsolatedVerticesAllIn) {
  const Mis2Result r = mis2(graph::graph_from_edges(5, {}));
  EXPECT_EQ(r.set_size(), 5);
}

TEST(Mis2, StarPicksExactlyOne) {
  // Every pair in a star is within distance 2, so the MIS-2 is a single
  // vertex — the case that distinguishes closed-neighborhood semantics.
  for (std::uint64_t seed : {0ull, 1ull, 2ull, 3ull}) {
    Mis2Options opts;
    opts.seed = seed;
    const Mis2Result r = mis2(test::star_graph(20), opts);
    EXPECT_EQ(r.set_size(), 1) << "seed " << seed;
  }
}

TEST(Mis2, CliquePicksExactlyOne) {
  const Mis2Result r = mis2(test::complete_graph(10));
  EXPECT_EQ(r.set_size(), 1);
}

TEST(Mis2, PathDensityBounds) {
  // On a path, MIS-2 members are >= 3 apart but maximality forces one per
  // 5 consecutive vertices.
  const ordinal_t n = 1000;
  const Mis2Result r = mis2(test::path_graph(n));
  EXPECT_TRUE(verify_mis2(test::path_graph(n), r.in_set));
  EXPECT_GE(r.set_size(), n / 5);
  EXPECT_LE(r.set_size(), (n + 2) / 3);
}

TEST(Mis2, MatchesMis1OnSquaredGraph) {
  // Lemma IV.2: any valid MIS-1 of G^2 is a valid MIS-2 of G, and vice
  // versa. Check both directions of the validity (not equality of sets).
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    const graph::CrsGraph g2 = graph::square(ng.g);
    // Direction 1: our MIS-2 must be a valid MIS-1 on G^2.
    const Mis2Result r2 = mis2(ng.g);
    EXPECT_TRUE(verify_mis1(g2, r2.in_set)) << ng.name << " (mis2 as mis1-of-G2)";
    // Direction 2: MIS-1 of G^2 (computed by Luby via mis2_via_squaring)
    // must be a valid MIS-2 on G.
    const Mis2Result r1 = mis2_via_squaring(ng.g);
    EXPECT_TRUE(verify_mis2(ng.g, r1.in_set)) << ng.name << " (mis1-of-G2 as mis2)";
  }
}

TEST(Mis2, DeterministicAcrossRepeats) {
  const graph::CrsGraph g = test::er_graph(300, 0.02, 21);
  const Mis2Result a = mis2(g);
  for (int rep = 0; rep < 3; ++rep) {
    const Mis2Result b = mis2(g);
    EXPECT_EQ(a.members, b.members);
    EXPECT_EQ(a.iterations, b.iterations);
  }
}

TEST(Mis2, DeterministicAcrossThreadCountsAllOptionCombos) {
  const graph::CrsGraph g = graph::random_geometric_3d(4000, 14.0, 99);
  for (const Mis2Options& opts : option_matrix()) {
    Mis2Result serial_r, parallel_r;
    {
      par::ScopedExecution scope(par::Backend::Serial, 1);
      serial_r = mis2(g, opts);
    }
    {
      par::ScopedExecution scope(par::Backend::OpenMP, 0);
      parallel_r = mis2(g, opts);
    }
    EXPECT_EQ(serial_r.members, parallel_r.members)
        << "scheme=" << static_cast<int>(opts.priority) << " wl=" << opts.use_worklists
        << " packed=" << opts.packed_tuples << " simd=" << opts.simd;
    EXPECT_EQ(serial_r.iterations, parallel_r.iterations);
  }
}

TEST(Mis2, WorklistsDoNotChangeResult) {
  // Worklists are a pure performance optimization: with the same priority
  // stream the decided set must be identical.
  const graph::CrsGraph g = graph::random_geometric_3d(3000, 10.0, 5);
  Mis2Options with, without;
  with.use_worklists = true;
  without.use_worklists = false;
  EXPECT_EQ(mis2(g, with).members, mis2(g, without).members);
}

TEST(Mis2, PackedAndWideTuplesAgree) {
  // Packing must not change the comparison order seen by the algorithm —
  // but the *stored priority precision* differs (wide keeps 32 bits,
  // packed keeps 32-b), so only validity and rough size parity are
  // required, not equality.
  const graph::CrsGraph g = graph::random_geometric_3d(3000, 10.0, 6);
  Mis2Options packed, wide;
  packed.packed_tuples = true;
  wide.packed_tuples = false;
  const Mis2Result rp = mis2(g, packed);
  const Mis2Result rw = mis2(g, wide);
  EXPECT_TRUE(verify_mis2(g, rp.in_set));
  EXPECT_TRUE(verify_mis2(g, rw.in_set));
  EXPECT_NEAR(static_cast<double>(rp.set_size()), static_cast<double>(rw.set_size()),
              0.2 * rw.set_size() + 5);
}

TEST(Mis2, SimdMatchesScalarExactly) {
  // SIMD only reorders associative min/count reductions; the decided set
  // must be bit-identical. Use a dense graph so the degree heuristic
  // actually enables SIMD.
  const graph::CrsGraph g = graph::random_geometric_3d(3000, 24.0, 7);
  ASSERT_GE(graph::GraphView(g).avg_degree(), par::simd_degree_threshold);
  Mis2Options simd_on, simd_off;
  simd_on.simd = true;
  simd_off.simd = false;
  EXPECT_EQ(mis2(g, simd_on).members, mis2(g, simd_off).members);
}

TEST(Mis2, PrioritySchemeIterationOrdering) {
  // Table I's two robust observations, as reproduced here (see
  // EXPERIMENTS.md): (a) per-iteration xorshift* needs fewer iterations
  // than fixed priorities (dependency chains break); (b) plain xorshift is
  // pathological on high-degree meshes (correlated across iterations).
  const graph::CrsGraph lap = test::adjacency_of(graph::laplace3d(30, 30, 30));
  Mis2Options star, plain, fixed;
  star.priority = PriorityScheme::XorshiftStar;
  plain.priority = PriorityScheme::Xorshift;
  fixed.priority = PriorityScheme::Fixed;
  EXPECT_LT(mis2(lap, star).iterations, mis2(lap, fixed).iterations);

  const graph::CrsGraph ela = test::adjacency_of(graph::elasticity3d(14, 14, 14));
  EXPECT_LT(mis2(ela, star).iterations, mis2(ela, plain).iterations);
}

TEST(Mis2, IterationCountIsLogarithmicInPractice) {
  // Table III: structured problems decide in ~8-12 iterations at 10^5-10^6
  // vertices. Enforce a loose ceiling that still catches stalls.
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(40, 40, 40));
  const Mis2Result r = mis2(g);
  EXPECT_LE(r.iterations, 25);
  EXPECT_GE(r.iterations, 2);
}

TEST(Mis2Masked, EmptyMaskMeansNoMembers) {
  const graph::CrsGraph g = test::path_graph(10);
  std::vector<char> active(10, 0);
  const Mis2Result r = mis2_masked(g, active);
  EXPECT_EQ(r.set_size(), 0);
}

TEST(Mis2Masked, FullMaskMatchesUnmasked) {
  const graph::CrsGraph g = test::er_graph(120, 0.05, 31);
  std::vector<char> active(120, 1);
  EXPECT_EQ(mis2_masked(g, active).members, mis2(g).members);
}

TEST(Mis2Masked, PathsThroughInactiveVerticesDoNotCount) {
  // 0-1-2 path with 1 inactive: 0 and 2 are disconnected in the induced
  // subgraph, so both join the set.
  const graph::CrsGraph g = test::path_graph(3);
  std::vector<char> active{1, 0, 1};
  const Mis2Result r = mis2_masked(g, active);
  EXPECT_EQ(r.set_size(), 2);
  EXPECT_TRUE(r.in_set[0]);
  EXPECT_TRUE(r.in_set[2]);
  EXPECT_TRUE(verify_mis2_masked(g, r.in_set, active));
}

TEST(Mis2Masked, ValidOnFamilyWithRandomMasks) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    rng::SplitMix64 gen(1234);
    std::vector<char> active(static_cast<std::size_t>(ng.g.num_rows));
    for (auto& a : active) a = gen.next_double() < 0.6 ? 1 : 0;
    const Mis2Result r = mis2_masked(ng.g, active);
    EXPECT_TRUE(verify_mis2_masked(ng.g, r.in_set, active)) << ng.name;
    // Members must be active.
    for (ordinal_t v : r.members) {
      EXPECT_TRUE(active[static_cast<std::size_t>(v)]) << ng.name;
    }
  }
}

TEST(Mis2Masked, AgreesWithExplicitInducedSubgraph) {
  // The masked run must produce a set that is valid on the materialized
  // induced subgraph too (same semantics, two implementations).
  const graph::CrsGraph g = graph::random_geometric_2d(500, 8.0, 77);
  rng::SplitMix64 gen(5);
  std::vector<char> active(500);
  for (auto& a : active) a = gen.next_double() < 0.5 ? 1 : 0;
  const Mis2Result r = mis2_masked(g, active);

  const graph::InducedSubgraph sub = graph::induced_subgraph(g, active);
  std::vector<char> sub_in(static_cast<std::size_t>(sub.graph.num_rows), 0);
  for (ordinal_t sv = 0; sv < sub.graph.num_rows; ++sv) {
    sub_in[static_cast<std::size_t>(sv)] =
        r.in_set[static_cast<std::size_t>(sub.to_original[static_cast<std::size_t>(sv)])];
  }
  EXPECT_TRUE(verify_mis2(sub.graph, sub_in));
}

TEST(Verify, RejectsIndependenceViolations) {
  const graph::CrsGraph g = test::path_graph(5);
  std::vector<char> bad{1, 0, 1, 0, 0};  // distance 2 apart
  EXPECT_FALSE(is_distance_k_independent(g, bad, 2));
  EXPECT_TRUE(is_distance_k_independent(g, bad, 1));
}

TEST(Verify, RejectsNonMaximalSets) {
  const graph::CrsGraph g = test::path_graph(9);
  std::vector<char> sparse{1, 0, 0, 0, 0, 0, 0, 0, 0};  // vertex 8 addable
  EXPECT_TRUE(is_distance_k_independent(g, sparse, 2));
  EXPECT_FALSE(is_distance_k_maximal(g, sparse, 2));
}

}  // namespace
}  // namespace parmis::core
