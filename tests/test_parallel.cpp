/// \file test_parallel.cpp
/// \brief Unit and property tests for the portable execution layer:
/// parallel_for, deterministic reductions, blocked scans, compaction, and
/// the SIMD gather reductions.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/execution.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/simd.hpp"

namespace parmis {
namespace {

using par::Backend;
using par::Execution;
using par::ScopedExecution;

TEST(Execution, BackendSelection) {
  ScopedExecution scope(Backend::Serial, 0);
  EXPECT_EQ(Execution::backend(), Backend::Serial);
  EXPECT_EQ(Execution::num_threads(), 1);
  EXPECT_FALSE(Execution::is_parallel());
}

TEST(Execution, ThreadCountClamp) {
  ScopedExecution scope(Backend::OpenMP, 3);
#ifdef PARMIS_HAVE_OPENMP
  EXPECT_EQ(Execution::num_threads(), 3);
#else
  EXPECT_EQ(Execution::num_threads(), 1);
#endif
}

TEST(Execution, ScopedRestores) {
  const Backend before = Execution::backend();
  const int threads_before = Execution::num_threads();
  {
    ScopedExecution scope(Backend::Serial, 1);
    EXPECT_EQ(Execution::backend(), Backend::Serial);
  }
  EXPECT_EQ(Execution::backend(), before);
  EXPECT_EQ(Execution::num_threads(), threads_before);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  const std::int64_t n = 100000;
  std::vector<int> hits(n, 0);
  par::parallel_for(n, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int count = 0;
  par::parallel_for(std::int64_t{0}, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  par::parallel_for(std::int64_t{1}, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForRange, OffsetsApplied) {
  std::vector<std::int64_t> seen;
  std::vector<char> flag(20, 0);
  par::parallel_for_range<std::int64_t>(5, 15, [&](std::int64_t i) {
    flag[static_cast<std::size_t>(i)] = 1;
  });
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(flag[static_cast<std::size_t>(i)], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelReduce, SumMatchesSerial) {
  const std::int64_t n = 123457;
  const std::int64_t total =
      par::reduce_sum<std::int64_t>(n, [](std::int64_t i) { return i; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelReduce, MinMaxIdentities) {
  EXPECT_EQ(par::reduce_min<int>(std::int64_t{0}, [](std::int64_t) { return 1; }, 42), 42);
  EXPECT_EQ(par::reduce_max<int>(std::int64_t{0}, [](std::int64_t) { return 1; }, -7), -7);
  const int mn = par::reduce_min<int>(
      std::int64_t{10000}, [](std::int64_t i) { return static_cast<int>((i * 7919) % 1001); },
      1 << 30);
  EXPECT_EQ(mn, 0);
}

TEST(ParallelReduce, FloatSumIsThreadCountInvariant) {
  // The raison d'être of the fixed-chunk reduction: bit-identical floating
  // sums regardless of parallelism.
  const std::int64_t n = 1 << 18;
  auto f = [](std::int64_t i) { return 1.0 / static_cast<double>(i + 1); };
  double serial_val = 0, two_thread_val = 0, many_thread_val = 0;
  {
    ScopedExecution scope(Backend::Serial, 1);
    serial_val = par::reduce_sum<double>(n, f);
  }
  {
    ScopedExecution scope(Backend::OpenMP, 2);
    two_thread_val = par::reduce_sum<double>(n, f);
  }
  {
    ScopedExecution scope(Backend::OpenMP, 0);
    many_thread_val = par::reduce_sum<double>(n, f);
  }
  EXPECT_EQ(serial_val, two_thread_val);
  EXPECT_EQ(serial_val, many_thread_val);
}

TEST(ParallelReduce, NonCommutativeJoinOrdered) {
  // join = string-like fold encoded in integers: (a, b) -> a * 31 + b.
  // Only a strictly left-to-right combine yields the serial answer.
  const std::int64_t n = 50000;
  auto f = [](std::int64_t i) { return static_cast<std::uint64_t>(i % 97); };
  auto join = [](std::uint64_t a, std::uint64_t b) { return a * 31 + b; };
  std::uint64_t serial_acc = 0;
  for (std::int64_t i = 0; i < n; ++i) serial_acc = join(serial_acc, f(i));

  // The chunked reduce applies join between chunk partials, which is NOT
  // the same as elementwise for non-associative joins; but determinism
  // still demands identical output across thread counts.
  std::uint64_t v1, v2;
  {
    ScopedExecution scope(Backend::OpenMP, 2);
    v1 = par::parallel_reduce<std::uint64_t>(n, f, join, std::uint64_t{0});
  }
  {
    ScopedExecution scope(Backend::OpenMP, 0);
    v2 = par::parallel_reduce<std::uint64_t>(n, f, join, std::uint64_t{0});
  }
  EXPECT_EQ(v1, v2);
}

TEST(CountIf, MatchesSerialFilter) {
  const std::int64_t n = 99991;
  const std::int64_t c = par::count_if(n, [](std::int64_t i) { return i % 3 == 0; });
  EXPECT_EQ(c, (n + 2) / 3);
}

class ScanTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScanTest, ExclusiveMatchesStd) {
  const std::int64_t n = GetParam();
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = (i * 37) % 11;
  std::vector<std::int64_t> expected(data.size());
  std::exclusive_scan(data.begin(), data.end(), expected.begin(), std::int64_t{0});
  const std::int64_t expected_total = std::accumulate(data.begin(), data.end(), std::int64_t{0});

  std::vector<std::int64_t> got = data;
  const std::int64_t total = par::exclusive_scan_inplace(std::span<std::int64_t>(got));
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(got, expected);
}

TEST_P(ScanTest, InclusiveMatchesStd) {
  const std::int64_t n = GetParam();
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = (i * 13) % 7 - 3;
  std::vector<std::int64_t> expected(data.size());
  std::inclusive_scan(data.begin(), data.end(), expected.begin());

  std::vector<std::int64_t> got = data;
  par::inclusive_scan_inplace(std::span<std::int64_t>(got));
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0, 1, 2, 100, 8191, 8192, 8193, 50000, 262144));

TEST(Compact, StableFilter) {
  const ordinal_t n = 100000;
  std::vector<ordinal_t> out;
  par::compact_into(
      n, [](ordinal_t i) { return i % 7 == 2; }, [](ordinal_t i) { return i * 2; }, out);
  ASSERT_FALSE(out.empty());
  ordinal_t expect = 2;
  for (ordinal_t v : out) {
    EXPECT_EQ(v, expect * 2 / 2 * 2);  // even doubling preserved
    EXPECT_EQ(v / 2 % 7, 2);
    EXPECT_GE(v / 2, expect);
    expect = v / 2 + 7;
  }
  EXPECT_EQ(static_cast<ordinal_t>(out.size()), (n - 3) / 7 + 1);
}

TEST(Compact, EmptyInput) {
  std::vector<int> out{1, 2, 3};
  par::compact_into(
      ordinal_t{0}, [](ordinal_t) { return true; }, [](ordinal_t i) { return int(i); }, out);
  EXPECT_TRUE(out.empty());
}

TEST(Compact, AllKeptPreservesOrder) {
  const ordinal_t n = 20000;
  std::vector<ordinal_t> out;
  par::compact_into(
      n, [](ordinal_t) { return true; }, [](ordinal_t i) { return i; }, out);
  ASSERT_EQ(static_cast<ordinal_t>(out.size()), n);
  for (ordinal_t i = 0; i < n; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(Simd, MinGatherMatchesSerial) {
  const ordinal_t n = 1000;
  std::vector<std::uint32_t> values(n);
  std::vector<ordinal_t> entries;
  for (ordinal_t i = 0; i < n; ++i) {
    values[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>((i * 2654435761u) % 100000);
    if (i % 3 == 0) entries.push_back(i);
  }
  const std::uint32_t init = 99999999u;
  std::uint32_t expected = init;
  for (ordinal_t e : entries) expected = std::min(expected, values[static_cast<std::size_t>(e)]);
  EXPECT_EQ(par::simd_min_gather(values.data(), entries.data(), 0,
                                 static_cast<offset_t>(entries.size()), init),
            expected);
}

TEST(Simd, MinGatherEmptyRangeReturnsInit) {
  std::vector<std::uint32_t> values{5};
  std::vector<ordinal_t> entries{0};
  EXPECT_EQ(par::simd_min_gather(values.data(), entries.data(), 0, 0, 123u), 123u);
}

TEST(Simd, CountEqualGather) {
  std::vector<std::uint32_t> values{7, 3, 7, 9, 7, 7};
  std::vector<ordinal_t> entries{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(par::simd_count_equal_gather(values.data(), entries.data(), 0, 6, 7u), 4);
  EXPECT_EQ(par::simd_count_equal_gather(values.data(), entries.data(), 0, 6, 1u), 0);
  EXPECT_EQ(par::simd_count_equal_gather(values.data(), entries.data(), 2, 3, 7u), 1);
}

}  // namespace
}  // namespace parmis
