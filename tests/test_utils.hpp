#pragma once
/// \file test_utils.hpp
/// \brief Shared fixtures: graph families, adjacency helpers, thread sweeps.

#include <string>
#include <utility>
#include <vector>

#include "graph/builders.hpp"
#include "graph/crs.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "random/hash.hpp"

namespace parmis::test {

/// Loop-free adjacency of a stencil matrix (strips the diagonal).
inline graph::CrsGraph adjacency_of(const graph::CrsMatrix& m) {
  return graph::remove_self_loops(graph::GraphView(m));
}

inline graph::CrsGraph path_graph(ordinal_t n) {
  std::vector<graph::Edge> e;
  for (ordinal_t i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return graph::graph_from_edges(n, e);
}

inline graph::CrsGraph cycle_graph(ordinal_t n) {
  std::vector<graph::Edge> e;
  for (ordinal_t i = 0; i < n; ++i) e.emplace_back(i, (i + 1) % n);
  return graph::graph_from_edges(n, e);
}

/// Star: vertex 0 is the hub.
inline graph::CrsGraph star_graph(ordinal_t leaves) {
  std::vector<graph::Edge> e;
  for (ordinal_t i = 1; i <= leaves; ++i) e.emplace_back(0, i);
  return graph::graph_from_edges(leaves + 1, e);
}

inline graph::CrsGraph complete_graph(ordinal_t n) {
  std::vector<graph::Edge> e;
  for (ordinal_t i = 0; i < n; ++i) {
    for (ordinal_t j = i + 1; j < n; ++j) e.emplace_back(i, j);
  }
  return graph::graph_from_edges(n, e);
}

/// Complete binary tree with n vertices (vertex 0 root).
inline graph::CrsGraph binary_tree(ordinal_t n) {
  std::vector<graph::Edge> e;
  for (ordinal_t i = 1; i < n; ++i) e.emplace_back((i - 1) / 2, i);
  return graph::graph_from_edges(n, e);
}

/// Erdős–Rényi G(n, p), deterministic in `seed`.
inline graph::CrsGraph er_graph(ordinal_t n, double p, std::uint64_t seed) {
  rng::SplitMix64 gen(seed);
  std::vector<graph::Edge> e;
  for (ordinal_t i = 0; i < n; ++i) {
    for (ordinal_t j = i + 1; j < n; ++j) {
      if (gen.next_double() < p) e.emplace_back(i, j);
    }
  }
  return graph::graph_from_edges(n, e);
}

/// Two cliques joined by a single bridge edge.
inline graph::CrsGraph barbell_graph(ordinal_t clique) {
  std::vector<graph::Edge> e;
  for (ordinal_t i = 0; i < clique; ++i) {
    for (ordinal_t j = i + 1; j < clique; ++j) {
      e.emplace_back(i, j);
      e.emplace_back(clique + i, clique + j);
    }
  }
  e.emplace_back(clique - 1, clique);
  return graph::graph_from_edges(2 * clique, e);
}

struct NamedGraph {
  std::string name;
  graph::CrsGraph g;
};

/// The standard family sweep used by MIS/coloring/aggregation property
/// tests: hand-built shapes, random graphs, meshes, and edge cases.
inline std::vector<NamedGraph> test_graph_family() {
  std::vector<NamedGraph> fam;
  fam.push_back({"empty", graph::CrsGraph{}});
  fam.push_back({"single", graph::graph_from_edges(1, {})});
  fam.push_back({"two_isolated", graph::graph_from_edges(2, {})});
  fam.push_back({"one_edge", graph::graph_from_edges(2, {{0, 1}})});
  fam.push_back({"path10", path_graph(10)});
  fam.push_back({"path2", path_graph(2)});
  fam.push_back({"cycle12", cycle_graph(12)});
  fam.push_back({"cycle5", cycle_graph(5)});
  fam.push_back({"star9", star_graph(9)});
  fam.push_back({"clique8", complete_graph(8)});
  fam.push_back({"tree31", binary_tree(31)});
  fam.push_back({"barbell6", barbell_graph(6)});
  fam.push_back({"er_sparse", er_graph(60, 0.05, 7)});
  fam.push_back({"er_dense", er_graph(40, 0.3, 11)});
  fam.push_back({"grid2d", adjacency_of(graph::laplace2d(9, 7))});
  fam.push_back({"grid2d_9pt", adjacency_of(graph::laplace2d(8, 8, graph::Stencil2D::NinePoint))});
  fam.push_back({"grid3d", adjacency_of(graph::laplace3d(5, 5, 5))});
  fam.push_back({"grid3d_27pt",
                 adjacency_of(graph::laplace3d(4, 4, 4, graph::Stencil3D::TwentySevenPoint))});
  fam.push_back({"elasticity", adjacency_of(graph::elasticity3d(3, 3, 3))});
  fam.push_back({"rgg2d", graph::random_geometric_2d(300, 6.0, 13)});
  fam.push_back({"rgg3d", graph::random_geometric_3d(400, 12.0, 17)});
  fam.push_back({"isolated_mix", graph::graph_from_edges(9, {{0, 1}, {1, 2}, {5, 6}})});
  return fam;
}

}  // namespace parmis::test
