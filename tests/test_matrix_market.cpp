/// \file test_matrix_market.cpp
/// \brief Regression tests for Matrix Market robustness: files in the wild
/// carry CRLF endings, blank lines, and %-comments after the header, all
/// of which the reader must tolerate.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"

namespace parmis::graph {
namespace {

std::string temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

void expect_same_matrix(const CrsMatrix& a, const CrsMatrix& b) {
  EXPECT_EQ(b.num_rows, a.num_rows);
  EXPECT_EQ(b.num_cols, a.num_cols);
  EXPECT_EQ(b.row_map, a.row_map);
  EXPECT_EQ(b.entries, a.entries);
  ASSERT_EQ(b.values.size(), a.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.values[i], a.values[i]);
  }
}

/// Round-trip a matrix through write_matrix_market, then mangle the text
/// with a line transformer and read it back.
template <typename Mangle>
CrsMatrix roundtrip_mangled(const CrsMatrix& a, const char* name, Mangle&& mangle) {
  const std::string clean = temp_path("parmis_mm_clean.mtx");
  write_matrix_market(clean, a);
  std::ifstream in(clean);
  std::ostringstream mangled;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    mangle(line_no++, line, mangled);
  }
  in.close();
  const std::string path = temp_path(name);
  {
    std::ofstream out(path, std::ios::binary);  // binary: keep our \r exact
    out << mangled.str();
  }
  const CrsMatrix b = read_matrix_market(path);
  std::remove(clean.c_str());
  std::remove(path.c_str());
  return b;
}

TEST(MatrixMarketHardening, CrlfLineEndings) {
  const CrsMatrix a = laplace2d(5, 4);
  const CrsMatrix b = roundtrip_mangled(
      a, "parmis_mm_crlf.mtx",
      [](std::size_t, const std::string& line, std::ostringstream& out) {
        out << line << "\r\n";
      });
  expect_same_matrix(a, b);
}

TEST(MatrixMarketHardening, BlankLinesEverywhere) {
  const CrsMatrix a = laplace2d(4, 4);
  const CrsMatrix b = roundtrip_mangled(
      a, "parmis_mm_blank.mtx",
      [](std::size_t i, const std::string& line, std::ostringstream& out) {
        if (i == 1) out << "\n   \n";  // before the size line
        out << line << "\n";
        if (i % 3 == 0) out << "\n";  // sprinkled through the entries
      });
  expect_same_matrix(a, b);
}

TEST(MatrixMarketHardening, CommentsAfterHeaderAndBetweenEntries) {
  const CrsMatrix a = laplace2d(3, 5);
  const CrsMatrix b = roundtrip_mangled(
      a, "parmis_mm_comments.mtx",
      [](std::size_t i, const std::string& line, std::ostringstream& out) {
        if (i == 1) out << "% late header comment\n%\n";
        out << line << "\n";
        if (i == 4) out << "  % indented comment between entries\n";
      });
  expect_same_matrix(a, b);
}

TEST(MatrixMarketHardening, AllThreeAtOnce) {
  const CrsMatrix a = elasticity3d(2, 2, 2);
  const CrsMatrix b = roundtrip_mangled(
      a, "parmis_mm_tricky.mtx",
      [](std::size_t i, const std::string& line, std::ostringstream& out) {
        if (i == 1) out << "\r\n% comment after header\r\n";
        out << line << "\r\n";
        if (i % 5 == 2) out << "\r\n% noise\r\n";
      });
  expect_same_matrix(a, b);
}

TEST(MatrixMarketHardening, TruncatedEntriesStillRejected) {
  const std::string path = temp_path("parmis_mm_trunc.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "3 3 3\n";
    out << "1 1 1.0\n\n% only one of three entries\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MatrixMarketHardening, MalformedEntryLineRejected) {
  const std::string path = temp_path("parmis_mm_malformed.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "2 2 2\n";
    out << "1 1 1.0\n";
    out << "oops\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parmis::graph
