/// \file test_graph.cpp
/// \brief Tests for the CRS substrate: containers, builders, structural
/// ops (transpose/symmetrize/square/subgraph), SpMV, SpGEMM, matrix add.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/builders.hpp"
#include "graph/crs.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmv.hpp"
#include "test_utils.hpp"

namespace parmis::graph {
namespace {

TEST(Crs, EmptyGraphIsValid) {
  CrsGraph g;
  EXPECT_EQ(g.num_rows, 0);
  EXPECT_EQ(g.num_entries(), 0);
  EXPECT_TRUE(g.validate());
}

TEST(Crs, RowAccessors) {
  const CrsGraph g = graph_from_edges(4, {{0, 1}, {0, 2}, {2, 3}});
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 1);
  auto r0 = g.row(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], 1);
  EXPECT_EQ(r0[1], 2);
}

TEST(Crs, ValidateCatchesUnsorted) {
  CrsGraph g;
  g.num_rows = 2;
  g.num_cols = 2;
  g.row_map = {0, 2, 2};
  g.entries = {1, 0};  // unsorted within row 0
  EXPECT_FALSE(g.validate(true));
  EXPECT_TRUE(g.validate(false));
}

TEST(Crs, ValidateCatchesOutOfRange) {
  CrsGraph g;
  g.num_rows = 2;
  g.num_cols = 2;
  g.row_map = {0, 1, 1};
  g.entries = {5};
  EXPECT_FALSE(g.validate());
}

TEST(Builders, EdgesAreSymmetrizedAndDeduped) {
  const CrsGraph g = graph_from_edges(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_entries(), 4);  // 0-1, 1-0, 1-2, 2-1
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_FALSE(has_self_loops(g));
}

TEST(Builders, SelfLoopsDropped) {
  const CrsGraph g = graph_from_edges(3, {{0, 0}, {1, 1}, {0, 2}});
  EXPECT_EQ(g.num_entries(), 2);
  EXPECT_FALSE(has_self_loops(g));
}

TEST(Builders, CooMergesDuplicates) {
  const CrsMatrix m =
      matrix_from_coo(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 0, -1.0}, {0, 1, 4.0}});
  EXPECT_EQ(m.num_entries(), 3);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 3.5);
  EXPECT_DOUBLE_EQ(m.row_values(0)[1], 4.0);
  EXPECT_DOUBLE_EQ(m.row_values(1)[0], -1.0);
}

TEST(Ops, TransposeRoundTrip) {
  const CrsGraph g = graph_from_arcs(5, {{0, 1}, {0, 3}, {2, 1}, {4, 0}, {3, 2}});
  const CrsGraph t = transpose(g);
  EXPECT_TRUE(t.validate());
  const CrsGraph tt = transpose(t);
  EXPECT_EQ(tt.row_map, g.row_map);
  EXPECT_EQ(tt.entries, g.entries);
}

TEST(Ops, SymmetrizeMakesSymmetric) {
  const CrsGraph g = graph_from_arcs(6, {{0, 1}, {2, 3}, {3, 2}, {4, 5}, {5, 0}});
  EXPECT_FALSE(is_symmetric(g));
  const CrsGraph s = symmetrize(g);
  EXPECT_TRUE(s.validate());
  EXPECT_TRUE(is_symmetric(s));
  EXPECT_FALSE(has_self_loops(s));
  // Every original arc survives in both directions.
  auto has_arc = [&](ordinal_t u, ordinal_t v) {
    auto r = s.row(u);
    return std::binary_search(r.begin(), r.end(), v);
  };
  EXPECT_TRUE(has_arc(0, 1) && has_arc(1, 0));
  EXPECT_TRUE(has_arc(5, 0) && has_arc(0, 5));
}

TEST(Ops, RemoveSelfLoops) {
  CrsGraph g;
  g.num_rows = 3;
  g.num_cols = 3;
  g.row_map = {0, 2, 3, 5};
  g.entries = {0, 1, 1, 0, 2};
  EXPECT_TRUE(has_self_loops(g));
  const CrsGraph c = remove_self_loops(g);
  EXPECT_TRUE(c.validate());
  EXPECT_FALSE(has_self_loops(c));
  EXPECT_EQ(c.num_entries(), 2);  // three of the five entries were loops
}

TEST(Ops, SquareOfPath) {
  // Path 0-1-2-3-4: distance-<=2 neighbors of 0 are {1,2}; of 2 are all
  // but itself.
  const CrsGraph g = test::path_graph(5);
  const CrsGraph g2 = square(g);
  EXPECT_TRUE(g2.validate());
  EXPECT_EQ(g2.row(0).size(), 2u);
  EXPECT_EQ(g2.row(2).size(), 4u);
  EXPECT_TRUE(is_symmetric(g2));
  EXPECT_FALSE(has_self_loops(g2));
}

TEST(Ops, SquareMatchesBooleanSpGemmOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CrsGraph g = test::er_graph(50, 0.08, seed);
    const CrsGraph g2 = square(g);
    // Oracle: (G+I)^2 pattern minus the diagonal, via symbolic SpGEMM.
    CrsMatrix gi;
    gi.num_rows = g.num_rows;
    gi.num_cols = g.num_cols;
    {
      std::vector<Triplet> trips;
      for (ordinal_t v = 0; v < g.num_rows; ++v) {
        trips.push_back({v, v, 1.0});
        for (ordinal_t w : g.row(v)) trips.push_back({v, w, 1.0});
      }
      gi = matrix_from_coo(g.num_rows, g.num_cols, trips);
    }
    const CrsGraph prod = spgemm_symbolic(gi, gi);
    const CrsGraph oracle = remove_self_loops(prod);
    EXPECT_EQ(g2.row_map, oracle.row_map) << "seed " << seed;
    EXPECT_EQ(g2.entries, oracle.entries) << "seed " << seed;
  }
}

TEST(Ops, InducedSubgraph) {
  const CrsGraph g = test::cycle_graph(6);
  std::vector<char> keep{1, 1, 1, 0, 1, 1};  // drop vertex 3
  const InducedSubgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_rows, 5);
  EXPECT_TRUE(sub.graph.validate());
  EXPECT_TRUE(is_symmetric(sub.graph));
  // The cycle breaks into a path 4-5-0-1-2 (in original ids).
  EXPECT_EQ(sub.graph.num_entries(), 8);
  EXPECT_EQ(sub.to_original.size(), 5u);
  EXPECT_EQ(sub.to_sub[3], invalid_ordinal);
  for (ordinal_t sv = 0; sv < 5; ++sv) {
    EXPECT_EQ(sub.to_sub[static_cast<std::size_t>(sub.to_original[static_cast<std::size_t>(sv)])],
              sv);
  }
}

TEST(Ops, RelabelPermutesStructure) {
  // Cycle 0-1-2-3 reversed: new id = 3 - old id. Still a cycle; row v's
  // neighbors are its ± 1 ring mates under the new names.
  const CrsGraph g = test::cycle_graph(4);
  const std::vector<ordinal_t> new_id{3, 2, 1, 0};
  const CrsGraph r = relabel(g, new_id);
  EXPECT_TRUE(r.validate());
  EXPECT_TRUE(is_symmetric(r));
  EXPECT_EQ(r.num_entries(), g.num_entries());
  for (ordinal_t v = 0; v < 4; ++v) {
    EXPECT_EQ(r.degree(v), 2);
  }
  // Identity relabeling is a no-op.
  const std::vector<ordinal_t> ident{0, 1, 2, 3};
  const CrsGraph same = relabel(g, ident);
  EXPECT_EQ(same.row_map, g.row_map);
  EXPECT_EQ(same.entries, g.entries);
  // Degrees travel with the vertex: star hub keeps its degree anywhere.
  const CrsGraph star = test::star_graph(4);  // hub 0, degree 4
  std::vector<ordinal_t> rot{4, 0, 1, 2, 3};  // hub becomes vertex 4
  const CrsGraph moved = relabel(star, rot);
  EXPECT_EQ(moved.degree(4), 4);
  EXPECT_EQ(moved.degree(0), 1);
}

TEST(DegreeStats, OnStar) {
  const CrsGraph g = test::star_graph(7);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 7);
  EXPECT_NEAR(s.avg_degree, 14.0 / 8.0, 1e-12);
}

TEST(Spmv, MatchesDenseReference) {
  const CrsMatrix a =
      matrix_from_coo(3, 3, {{0, 0, 2}, {0, 2, 1}, {1, 1, -3}, {2, 0, 4}, {2, 2, 5}});
  std::vector<scalar_t> x{1, 2, 3};
  std::vector<scalar_t> y(3);
  spmv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2 * 1 + 1 * 3);
  EXPECT_DOUBLE_EQ(y[1], -3 * 2);
  EXPECT_DOUBLE_EQ(y[2], 4 * 1 + 5 * 3);
}

TEST(Spmv, AlphaBetaForm) {
  const CrsMatrix a = matrix_from_coo(2, 2, {{0, 0, 1}, {1, 1, 1}});
  std::vector<scalar_t> x{3, 4};
  std::vector<scalar_t> y{10, 20};
  spmv(2.0, a, x, -1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 2 * 3 - 10);
  EXPECT_DOUBLE_EQ(y[1], 2 * 4 - 20);
}

/// Dense oracle multiply for SpGEMM checks.
std::vector<scalar_t> to_dense(const CrsMatrix& m) {
  std::vector<scalar_t> d(static_cast<std::size_t>(m.num_rows) * m.num_cols, 0);
  for (ordinal_t i = 0; i < m.num_rows; ++i) {
    for (offset_t j = m.row_map[i]; j < m.row_map[i + 1]; ++j) {
      d[static_cast<std::size_t>(i) * m.num_cols +
        static_cast<std::size_t>(m.entries[static_cast<std::size_t>(j)])] =
          m.values[static_cast<std::size_t>(j)];
    }
  }
  return d;
}

TEST(Spgemm, MatchesDenseOracle) {
  for (std::uint64_t seed : {5ull, 6ull}) {
    rng::SplitMix64 gen(seed);
    std::vector<Triplet> ta, tb;
    const ordinal_t n = 20, m = 15, k = 25;
    for (int e = 0; e < 80; ++e) {
      ta.push_back({static_cast<ordinal_t>(gen.next_below(n)),
                    static_cast<ordinal_t>(gen.next_below(m)), gen.next_double() - 0.5});
      tb.push_back({static_cast<ordinal_t>(gen.next_below(m)),
                    static_cast<ordinal_t>(gen.next_below(k)), gen.next_double() - 0.5});
    }
    const CrsMatrix a = matrix_from_coo(n, m, ta);
    const CrsMatrix b = matrix_from_coo(m, k, tb);
    const CrsMatrix c = spgemm(a, b);
    EXPECT_TRUE(c.structure().validate());

    const auto da = to_dense(a), db = to_dense(b), dc = to_dense(c);
    for (ordinal_t i = 0; i < n; ++i) {
      for (ordinal_t j = 0; j < k; ++j) {
        scalar_t acc = 0;
        for (ordinal_t l = 0; l < m; ++l) {
          acc += da[static_cast<std::size_t>(i) * m + static_cast<std::size_t>(l)] *
                 db[static_cast<std::size_t>(l) * k + static_cast<std::size_t>(j)];
        }
        EXPECT_NEAR(dc[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(j)], acc, 1e-12);
      }
    }
  }
}

TEST(Spgemm, IdentityIsNeutral) {
  const CrsMatrix a = laplace2d(5, 5);
  std::vector<Triplet> ti;
  for (ordinal_t i = 0; i < a.num_rows; ++i) ti.push_back({i, i, 1.0});
  const CrsMatrix eye = matrix_from_coo(a.num_rows, a.num_rows, ti);
  const CrsMatrix c = spgemm(a, eye);
  EXPECT_EQ(c.row_map, a.row_map);
  EXPECT_EQ(c.entries, a.entries);
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.values[i], a.values[i]);
  }
}

TEST(MatrixAdd, MergesPatternsAndScales) {
  const CrsMatrix a = matrix_from_coo(2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  const CrsMatrix b = matrix_from_coo(2, 3, {{0, 0, 10}, {0, 1, 5}, {1, 1, -3}});
  const CrsMatrix c = matrix_add(2.0, a, 1.0, b);
  EXPECT_EQ(c.num_entries(), 4);  // cols {0,1,2} row 0, col {1} row 1
  const auto d = to_dense(c);
  EXPECT_DOUBLE_EQ(d[0], 2 * 1 + 10);
  EXPECT_DOUBLE_EQ(d[1], 5);
  EXPECT_DOUBLE_EQ(d[2], 2 * 2);
  EXPECT_DOUBLE_EQ(d[4], 2 * 3 - 3);
}

TEST(TransposeMatrix, ValuesFollowStructure) {
  const CrsMatrix a = matrix_from_coo(2, 3, {{0, 1, 7}, {1, 0, -2}, {1, 2, 4}});
  const CrsMatrix t = transpose_matrix(a);
  EXPECT_EQ(t.num_rows, 3);
  EXPECT_EQ(t.num_cols, 2);
  const auto d = to_dense(t);
  EXPECT_DOUBLE_EQ(d[0 * 2 + 1], -2);
  EXPECT_DOUBLE_EQ(d[1 * 2 + 0], 7);
  EXPECT_DOUBLE_EQ(d[2 * 2 + 1], 4);
}

TEST(ExtractDiagonal, HandlesMissingEntries) {
  const CrsMatrix a = matrix_from_coo(3, 3, {{0, 0, 5}, {1, 2, 1}, {2, 2, -2}});
  const std::vector<scalar_t> d = extract_diagonal(a);
  EXPECT_DOUBLE_EQ(d[0], 5);
  EXPECT_DOUBLE_EQ(d[1], 0);
  EXPECT_DOUBLE_EQ(d[2], -2);
}

TEST(Spgemm, GalerkinProductShrinksAndStaysSymmetric) {
  // R A P with a piecewise-constant P: the AMG building block.
  const CrsMatrix a = laplace2d(8, 8);
  const ordinal_t n = a.num_rows;
  std::vector<Triplet> tp;
  for (ordinal_t v = 0; v < n; ++v) tp.push_back({v, v / 4, 1.0});
  const CrsMatrix p = matrix_from_coo(n, (n + 3) / 4, tp);
  const CrsMatrix r = transpose_matrix(p);
  const CrsMatrix ac = spgemm(r, spgemm(a, p));
  EXPECT_EQ(ac.num_rows, (n + 3) / 4);
  EXPECT_EQ(ac.num_cols, (n + 3) / 4);
  EXPECT_TRUE(is_symmetric(ac));
}

}  // namespace
}  // namespace parmis::graph
