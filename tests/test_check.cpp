/// \file test_check.cpp
/// \brief The parmis::check subsystem: validators name the violated
/// invariant, digests carry bit-identity across configurations, the
/// AllocGuard interposer catches warm-path allocations, hardened loaders
/// reject corrupt input at the boundary, and release builds compile every
/// PARMIS_CHECK site to nothing.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/mis2.hpp"

#include "../examples/graph_inputs.hpp"
#include "check/alloc_guard.hpp"
#include "check/check.hpp"
#include "check/digest.hpp"
#include "check/validate.hpp"
#include "core/aggregation.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/ops.hpp"
#include "parallel/execution.hpp"
#include "solver/handle.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

graph::CrsGraph small_path_graph() {
  // 0 - 1 - 2 - 3, symmetric, sorted, loop-free.
  graph::CrsGraph g;
  g.num_rows = 4;
  g.num_cols = 4;
  g.row_map = {0, 1, 3, 5, 6};
  g.entries = {1, 0, 2, 1, 3, 2};
  return g;
}

// ------------------------------------------------------------- validators

TEST(CheckValidate, PassesOnWellFormedStructures) {
  const graph::CrsGraph g = small_path_graph();
  EXPECT_TRUE(check::validate(graph::GraphView(g),
                              {.require_loop_free = true, .require_symmetric = true}));
  const graph::CrsMatrix a = graph::laplacian_matrix(g, 1.0);
  EXPECT_TRUE(check::validate(a, {.structure = {}, .require_finite = true,
                                  .require_square = true}));
}

TEST(CheckValidate, NamesTheViolatedCrsInvariant) {
  graph::CrsGraph g = small_path_graph();
  g.row_map[2] = 0;  // non-monotone
  check::Result r = check::validate(graph::GraphView(g));
  EXPECT_FALSE(r);
  EXPECT_EQ(r.invariant, "crs.row_map.monotone");
  EXPECT_NE(r.diagnostic().find("crs.row_map.monotone"), std::string::npos);

  g = small_path_graph();
  g.entries[0] = 17;  // out of range
  r = check::validate(graph::GraphView(g));
  EXPECT_EQ(r.invariant, "crs.entries.in_range");

  g = small_path_graph();
  g.entries[1] = 2;
  g.entries[2] = 0;  // row 1 = {2, 0}: unsorted
  r = check::validate(graph::GraphView(g));
  EXPECT_EQ(r.invariant, "crs.entries.sorted");

  g = small_path_graph();
  g.entries[2] = 0;  // row 1 = {0, 0}: duplicate
  r = check::validate(graph::GraphView(g));
  EXPECT_EQ(r.invariant, "crs.entries.unique");

  g = small_path_graph();
  g.entries[0] = 0;  // self loop at row 0
  r = check::validate(graph::GraphView(g), {.require_loop_free = true});
  EXPECT_EQ(r.invariant, "crs.entries.loop_free");

  g = small_path_graph();
  g.entries[5] = 0;  // (3,0) present, (0,3) absent
  r = check::validate(graph::GraphView(g), {.require_symmetric = true});
  EXPECT_EQ(r.invariant, "crs.symmetric");
}

TEST(CheckValidate, NamesTheViolatedMatrixInvariant) {
  graph::CrsMatrix a = graph::laplacian_matrix(small_path_graph(), 1.0);
  a.values[1] = std::numeric_limits<scalar_t>::quiet_NaN();
  const check::Result r = check::validate(a);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.invariant, "matrix.values.finite");

  graph::CrsMatrix b = graph::laplacian_matrix(small_path_graph(), 1.0);
  b.values.pop_back();
  EXPECT_EQ(check::validate(b).invariant, "matrix.values.parallel");
}

TEST(CheckValidate, NamesTheViolatedAggregationInvariant) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(8, 8));
  core::Aggregation agg = core::aggregate_mis2(g);
  EXPECT_TRUE(check::validate(agg, g.num_rows));

  core::Aggregation bad = agg;
  bad.labels[0] = bad.num_aggregates + 3;
  EXPECT_EQ(check::validate(bad, g.num_rows).invariant, "aggregation.labels.in_range");

  bad = agg;
  // Empty aggregate 0: move all its members to aggregate 1.
  for (ordinal_t& l : bad.labels) {
    if (l == 0) l = 1;
  }
  EXPECT_EQ(check::validate(bad, g.num_rows).invariant, "aggregation.surjective");

  bad = agg;
  bad.roots[0] = bad.roots[1];  // root 0 now labeled with aggregate 1
  EXPECT_EQ(check::validate(bad, g.num_rows).invariant, "aggregation.roots.labeled");
}

TEST(CheckValidate, NamesTheViolatedPartitionInvariant) {
  std::vector<ordinal_t> part = {0, 1, 2, 0, 1, 2};
  EXPECT_TRUE(check::validate_partition(part, 3));

  part[2] = 5;
  EXPECT_EQ(check::validate_partition(part, 3).invariant, "partition.labels.in_range");

  part = {0, 0, 2, 0, 0, 2};  // part 1 empty
  EXPECT_EQ(check::validate_partition(part, 3).invariant, "partition.parts.nonempty");
  // ... but emptiness is not reportable when |V| < k.
  EXPECT_TRUE(check::validate_partition(std::vector<ordinal_t>{0, 1}, 3));
}

TEST(CheckValidate, NamesTheViolatedProlongatorInvariant) {
  // A valid tentative prolongator: 4 fine rows, 2 aggregates.
  graph::CrsMatrix p;
  p.num_rows = 4;
  p.num_cols = 2;
  p.row_map = {0, 1, 2, 3, 4};
  p.entries = {0, 0, 1, 1};
  p.values = {0.7, 0.7, 0.7, 0.7};
  EXPECT_TRUE(check::validate_prolongator(p, 4, 2, /*require_column_partition=*/true));

  graph::CrsMatrix bad = p;
  bad.entries = {0, 0, 0, 0};  // column 1 never hit
  EXPECT_EQ(check::validate_prolongator(bad, 4, 2).invariant, "prolongator.columns.covered");

  bad = p;
  bad.row_map = {0, 1, 1, 3, 4};  // row 1 contributes to no aggregate
  bad.entries = {0, 0, 1, 1};
  EXPECT_EQ(check::validate_prolongator(bad, 4, 2).invariant, "prolongator.rows.nonempty");

  bad = p;
  bad.row_map = {0, 2, 2, 3, 4};  // row 0 smeared over two aggregates
  bad.entries = {0, 1, 0, 1};
  EXPECT_EQ(check::validate_prolongator(bad, 4, 2, true).invariant,
            "prolongator.column_partition");

  bad = p;
  EXPECT_EQ(check::validate_prolongator(bad, 5, 2).invariant, "prolongator.shape");
}

// ---------------------------------------------------------------- digests

TEST(CheckDigest, KnownFnvVectorsAndHex) {
  // FNV-1a 64 of "a" = 0xaf63dc4c8601ec8c (published test vector).
  check::Digest d;
  d.update("a", 1);
  EXPECT_EQ(check::digest_hex(d.value()), "0xaf63dc4c8601ec8c");
  // Empty input hashes to the offset basis.
  EXPECT_EQ(check::Digest{}.value(), check::kFnvBasis);
}

TEST(CheckDigest, OrderAndBitPatternSensitivity) {
  const std::vector<ordinal_t> ab = {1, 2};
  const std::vector<ordinal_t> ba = {2, 1};
  EXPECT_NE(check::digest(ab), check::digest(ba));
  EXPECT_NE(check::digest_combine(1, 2), check::digest_combine(2, 1));
  // +0.0 and -0.0 differ by bit pattern — exactly what a bit-identity
  // contract wants.
  EXPECT_NE(check::digest(std::vector<scalar_t>{0.0}),
            check::digest(std::vector<scalar_t>{-0.0}));
}

TEST(CheckDigest, MatchesAcrossBackendsAndSchedules) {
  // The digest of an aggregation labeling is one word of bit-identity
  // evidence: identical across Serial/OpenMP and every deterministic
  // schedule.
  const graph::CrsGraph g = graph::random_geometric_3d(2000, 12.0, 7);
  std::uint64_t reference = 0;
  bool first = true;
  for (const par::Schedule s : {par::Schedule::Static, par::Schedule::EdgeBalanced}) {
    std::vector<std::pair<par::Backend, int>> cfgs = {{par::Backend::Serial, 1}};
#ifdef PARMIS_HAVE_OPENMP
    cfgs.emplace_back(par::Backend::OpenMP, 3);
    cfgs.emplace_back(par::Backend::OpenMP, 0);
#endif
    for (const auto& [backend, threads] : cfgs) {
      Context ctx;
      ctx.backend = backend;
      ctx.num_threads = threads;
      ctx.schedule = s;
      core::CoarsenHandle handle(ctx);
      const std::uint64_t d = check::digest(handle.aggregate_mis2(g).labels);
      if (first) {
        reference = d;
        first = false;
      } else {
        EXPECT_EQ(check::digest_hex(d), check::digest_hex(reference))
            << "backend=" << static_cast<int>(backend) << " threads=" << threads
            << " schedule=" << static_cast<int>(s);
      }
    }
  }
}

// ------------------------------------------------- contract enforcement

#if PARMIS_CHECK_ENABLED

TEST(CheckAllocGuard, CountsThisThreadsAllocations) {
  ASSERT_TRUE(check::counting_available());
  check::AllocGuard guard;
  EXPECT_EQ(guard.allocations(), 0u);
  {
    // A deliberate warm-path-style allocation: the guard must see it.
    std::vector<int> leaky(1024, 1);
    EXPECT_GT(leaky.back(), 0);
  }
  EXPECT_GT(guard.allocations(), 0u);
}

TEST(CheckInvariants, CorruptMatrixIsRejectedAtSolveEntry) {
  graph::CrsMatrix a = graph::laplacian_matrix(small_path_graph(), 1.0);
  a.values[0] = std::numeric_limits<scalar_t>::infinity();
  solver::SolveHandle handle("cg", "jacobi");
  std::vector<scalar_t> b(4, 1.0), x(4, 0.0);
  try {
    handle.solve(a, b, x, {});
    FAIL() << "corrupt matrix accepted";
  } catch (const check::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("matrix.values.finite"), std::string::npos) << e.what();
  }
}

TEST(CheckInvariants, CorruptGraphIsRejectedAtMis2Entry) {
  graph::CrsGraph g = small_path_graph();
  g.entries[5] = 0;  // break symmetry: (3,0) without (0,3)
  EXPECT_THROW((void)core::mis2(g), check::CheckError);
}

#else  // !PARMIS_CHECK_ENABLED

TEST(CheckZeroOverhead, DisabledSitesNeverEvaluateTheirCondition) {
  // In release builds a PARMIS_CHECK site is an unevaluated operand: the
  // condition is syntax-checked but never run.
  int calls = 0;
  auto expensive = [&]() {
    ++calls;
    return true;
  };
  PARMIS_CHECK(expensive());
  PARMIS_CHECK_MSG(expensive(), "never built");
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(check::counting_available(), false);
  EXPECT_EQ(check::thread_allocations(), 0u);
}

TEST(CheckZeroOverhead, MillionDisabledSitesAreFree) {
  // Timing-bound companion to the compile-out test (same budget shape as
  // the obs disabled-span test): a million disabled check sites must cost
  // nothing measurable. Generous bound — CI machines are noisy.
  volatile int sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1'000'000; ++i) {
    PARMIS_CHECK(sink == 0);
    PARMIS_CHECK_MSG(sink == 0, "free");
  }
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(ms, 500.0);
}

#endif  // PARMIS_CHECK_ENABLED

// --------------------------------------------------- hardened input paths

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = testing::TempDir() + "parmis_check_input.mtx";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CheckLoaders, MatrixMarketRejectsOutOfRangeIndexWithLocation) {
  const TempFile f(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 1.0\n"
      "7 2 1.0\n");
  try {
    (void)graph::read_matrix_market(f.path());
    FAIL() << "out-of-range entry accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(7, 2)"), std::string::npos) << e.what();
  }
}

TEST(CheckLoaders, MatrixMarketRejectsNonFiniteValues) {
  // "nan" either fails the numeric parse or parses non-finite; both paths
  // must reject the file rather than build a poisoned matrix.
  const TempFile f(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 nan\n");
  EXPECT_THROW((void)graph::read_matrix_market(f.path()), std::runtime_error);
}

TEST(CheckLoaders, GenSpecRejectsGarbageAndOverflow) {
  // Garbage numerics: std::atoi would have silently produced 0.
  EXPECT_THROW((void)examples::load_graph("gen:rgg:bogus:14"), std::runtime_error);
  EXPECT_THROW((void)examples::load_graph("gen:laplace2d:12cows"), std::runtime_error);
  // Ordinal overflow: 9999999999 wraps to a negative int32 under atoi.
  EXPECT_THROW((void)examples::load_graph("gen:rgg:9999999999:14"), std::runtime_error);
  // Grid whose vertex count (2000^3) overflows the 32-bit ordinal.
  EXPECT_THROW((void)examples::load_graph("gen:laplace3d:2000"), std::runtime_error);
  // Sane specs still load.
  EXPECT_EQ(examples::load_graph("gen:laplace2d:4").num_rows, 16);
}

}  // namespace
}  // namespace parmis
