/// \file test_amg.cpp
/// \brief Tests for the smoothed-aggregation AMG substrate and the five
/// aggregation schemes of Table V.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/spmv.hpp"
#include "parallel/execution.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/chebyshev.hpp"
#include "solver/serial_aggregation.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis::solver {
namespace {

constexpr AggregationScheme kAllSchemes[] = {
    AggregationScheme::SerialAgg, AggregationScheme::SerialD2C, AggregationScheme::NBD2C,
    AggregationScheme::Mis2Basic, AggregationScheme::Mis2Agg};

TEST(SerialAggregation, TotalAndValidOnFamily) {
  for (const auto& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    const core::Aggregation agg = serial_aggregation(ng.g);
    EXPECT_TRUE(core::verify_aggregation(ng.g, agg)) << ng.name;
  }
}

TEST(RunAggregation, AllSchemesTotalOnMesh) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(8, 8, 8));
  for (AggregationScheme s : kAllSchemes) {
    const core::Aggregation agg = run_aggregation(g, s, {});
    EXPECT_TRUE(core::verify_aggregation(g, agg)) << to_string(s);
    // Meshes must coarsen substantially (at least 3x).
    EXPECT_LT(agg.num_aggregates, g.num_rows / 3) << to_string(s);
  }
}

TEST(AmgHierarchy, BuildsMultipleLevels) {
  const AmgHierarchy h = AmgHierarchy::build(graph::laplace3d(16, 16, 16), {});
  EXPECT_GE(h.num_levels(), 2);
  // Level sizes strictly decrease and end at/below the direct-solve bound
  // (unless max_levels hit first).
  for (int l = 1; l < h.num_levels(); ++l) {
    EXPECT_LT(h.level(l).a.num_rows, h.level(l - 1).a.num_rows);
  }
  EXPECT_GT(h.setup_seconds(), 0.0);
  EXPECT_GT(h.aggregation_seconds(), 0.0);
  EXPECT_GE(h.setup_seconds(), h.aggregation_seconds());
}

TEST(AmgHierarchy, ProlongatorColumnsPartitionRows) {
  // The *tentative* prolongator partitions rows; smoothing widens it but
  // P's column space must still span the constant vector approximately:
  // P * (Pᵀ 1 normalized) ≈ 1 is too strong after smoothing, so instead
  // check structural sanity: every row of P is nonempty and every column
  // index is a valid coarse id.
  const AmgHierarchy h = AmgHierarchy::build(graph::laplace2d(30, 30), {});
  ASSERT_GE(h.num_levels(), 2);
  const graph::CrsMatrix& p = h.level(0).p;
  EXPECT_EQ(p.num_rows, h.level(0).a.num_rows);
  EXPECT_EQ(p.num_cols, h.level(1).a.num_rows);
  for (ordinal_t v = 0; v < p.num_rows; ++v) {
    EXPECT_GT(p.degree(v), 0) << "empty prolongator row " << v;
  }
}

TEST(AmgHierarchy, GalerkinOperatorSymmetric) {
  const AmgHierarchy h = AmgHierarchy::build(graph::laplace2d(24, 24), {});
  for (int l = 0; l < h.num_levels(); ++l) {
    EXPECT_TRUE(graph::is_symmetric(h.level(l).a)) << "level " << l;
  }
}

TEST(AmgHierarchy, VcycleReducesError) {
  const graph::CrsMatrix a = graph::laplace3d(10, 10, 10);
  const AmgHierarchy h = AmgHierarchy::build(a, {});
  const std::vector<scalar_t> b = random_vector(a.num_rows, 3);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);

  auto resnorm = [&] {
    std::vector<scalar_t> r(b.size());
    graph::spmv(a, x, r);
    axpby(1.0, b, -1.0, r);
    return norm2(r);
  };
  double prev = resnorm();
  for (int cycle = 0; cycle < 6; ++cycle) {
    h.vcycle(b, x);
    const double cur = resnorm();
    EXPECT_LT(cur, 0.8 * prev) << "cycle " << cycle;
    prev = cur;
  }
}

TEST(AmgHierarchy, OperatorComplexityModest) {
  const AmgHierarchy h = AmgHierarchy::build(graph::laplace3d(12, 12, 12), {});
  EXPECT_GE(h.operator_complexity(), 1.0);
  EXPECT_LE(h.operator_complexity(), 2.5);
}

class AmgSchemes : public ::testing::TestWithParam<AggregationScheme> {};

TEST_P(AmgSchemes, PreconditionedCgConverges) {
  // Every Table V row: AMG-preconditioned CG must converge on Laplace3D.
  const graph::CrsMatrix a = graph::laplace3d(12, 12, 12);
  AmgOptions opts;
  opts.scheme = GetParam();
  const AmgHierarchy h = AmgHierarchy::build(a, opts);

  const std::vector<scalar_t> b = random_vector(a.num_rows, 7);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions cg_opts;
  cg_opts.tolerance = 1e-10;
  cg_opts.max_iterations = 300;
  const IterResult r = cg(a, b, x, cg_opts, &h);
  EXPECT_TRUE(r.converged) << to_string(GetParam());
  EXPECT_LE(r.iterations, 120) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AmgSchemes, ::testing::ValuesIn(kAllSchemes),
                         [](const ::testing::TestParamInfo<AggregationScheme>& info) {
                           std::string s = to_string(info.param);
                           for (char& c : s) {
                             if (c == ' ') c = '_';
                           }
                           return s;
                         });

TEST(AmgHierarchy, Mis2AggBeatsMis2BasicInIterations) {
  // The headline Table V comparison: Algorithm 3 aggregation converges in
  // fewer CG iterations than Algorithm 2 ("MIS2 Basic").
  const graph::CrsMatrix a = graph::laplace3d(20, 20, 20);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 8);
  IterOptions cg_opts;
  cg_opts.tolerance = 1e-12;
  cg_opts.max_iterations = 400;

  auto iters_for = [&](AggregationScheme s) {
    AmgOptions opts;
    opts.scheme = s;
    const AmgHierarchy h = AmgHierarchy::build(a, opts);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    return cg(a, b, x, cg_opts, &h).iterations;
  };
  const int basic = iters_for(AggregationScheme::Mis2Basic);
  const int agg = iters_for(AggregationScheme::Mis2Agg);
  EXPECT_LT(agg, basic);
}

TEST(AmgHierarchy, DeterministicSchemesAcrossThreads) {
  const graph::CrsMatrix a = graph::laplace3d(10, 10, 10);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 9);
  IterOptions cg_opts;
  cg_opts.tolerance = 1e-10;
  cg_opts.max_iterations = 300;

  for (AggregationScheme s : {AggregationScheme::SerialAgg, AggregationScheme::Mis2Basic,
                              AggregationScheme::Mis2Agg}) {
    AmgOptions opts;
    opts.scheme = s;
    int serial_iters, parallel_iters;
    {
      par::ScopedExecution scope(par::Backend::Serial, 1);
      const AmgHierarchy h = AmgHierarchy::build(a, opts);
      std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
      serial_iters = cg(a, b, x, cg_opts, &h).iterations;
    }
    {
      par::ScopedExecution scope(par::Backend::OpenMP, 0);
      const AmgHierarchy h = AmgHierarchy::build(a, opts);
      std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
      parallel_iters = cg(a, b, x, cg_opts, &h).iterations;
    }
    EXPECT_EQ(serial_iters, parallel_iters) << to_string(s);
  }
}

TEST(AmgHierarchy, WorksOnRggSurrogate) {
  const graph::CrsMatrix a =
      graph::laplacian_matrix(graph::random_geometric_3d(8000, 14.0, 23), 0.1);
  const AmgHierarchy h = AmgHierarchy::build(a, {});
  const std::vector<scalar_t> b = random_vector(a.num_rows, 10);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions cg_opts;
  cg_opts.tolerance = 1e-8;
  cg_opts.max_iterations = 300;
  const IterResult r = cg(a, b, x, cg_opts, &h);
  EXPECT_TRUE(r.converged);
}

TEST(Chebyshev, LambdaMaxBoundsJacobiSpectrum) {
  // For a graph Laplacian with constant diagonal, λmax(D⁻¹A) <= 2; the
  // estimate (with its 1.1 headroom) must land in (1, 2.3].
  const graph::CrsMatrix a = graph::laplace2d(30, 30);
  const ChebyshevSmoother cheb(a, 3);
  EXPECT_GT(cheb.lambda_max(), 1.0);
  EXPECT_LE(cheb.lambda_max(), 2.3);
}

TEST(Chebyshev, SmootherReducesResidual) {
  const graph::CrsMatrix a = graph::laplace3d(8, 8, 8);
  const ChebyshevSmoother cheb(a, 3);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 21);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  std::vector<scalar_t> r(b.size());
  auto resnorm = [&] {
    graph::spmv(a, x, r);
    axpby(1.0, b, -1.0, r);
    return norm2(r);
  };
  double prev = resnorm();
  for (int s = 0; s < 5; ++s) {
    cheb.smooth(a, b, x);
    const double cur = resnorm();
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Chebyshev, HigherDegreeSmoothsFasterPerApplication) {
  const graph::CrsMatrix a = graph::laplace2d(25, 25);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 22);
  auto residual_after = [&](int degree) {
    const ChebyshevSmoother cheb(a, degree);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    cheb.smooth(a, b, x);
    std::vector<scalar_t> r(b.size());
    graph::spmv(a, x, r);
    axpby(1.0, b, -1.0, r);
    return norm2(r);
  };
  EXPECT_LT(residual_after(4), residual_after(1));
}

TEST(AmgHierarchy, ChebyshevSmootherConverges) {
  const graph::CrsMatrix a = graph::laplace3d(12, 12, 12);
  AmgOptions opts;
  opts.smoother = SmootherType::Chebyshev;
  opts.smoother_sweeps = 1;
  const AmgHierarchy h = AmgHierarchy::build(a, opts);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 23);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions cg_opts;
  cg_opts.tolerance = 1e-10;
  cg_opts.max_iterations = 200;
  const IterResult r = cg(a, b, x, cg_opts, &h);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 60);
}

TEST(Chebyshev, DeterministicAcrossThreads) {
  const graph::CrsMatrix a = graph::laplace2d(40, 40);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 24);
  std::vector<scalar_t> x1(static_cast<std::size_t>(a.num_rows), 0), x2 = x1;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    const ChebyshevSmoother cheb(a, 3);
    cheb.smooth(a, b, x1);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    const ChebyshevSmoother cheb(a, 3);
    cheb.smooth(a, b, x2);
  }
  EXPECT_EQ(x1, x2);
}

TEST(AmgHierarchy, SingleLevelFallsBackToDirectSolve) {
  AmgOptions opts;
  opts.coarse_size = 10000;  // bigger than the matrix: no coarsening
  const graph::CrsMatrix a = graph::laplace2d(12, 12);
  const AmgHierarchy h = AmgHierarchy::build(a, opts);
  EXPECT_EQ(h.num_levels(), 1);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 11);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  h.vcycle(b, x);  // pure LU solve
  std::vector<scalar_t> r(b.size());
  graph::spmv(a, x, r);
  axpby(1.0, b, -1.0, r);
  EXPECT_LE(norm2(r), 1e-8 * norm2(b));
}

}  // namespace
}  // namespace parmis::solver
