/// \file test_serve.cpp
/// \brief Tests for the `parmis::serve` subsystem: snapshot save / mmap
/// round trips and integrity rejection (truncation, bit flips, version
/// and magic mismatches), the warm-`rebuild_galerkin` contract across a
/// serialization boundary, `HandlePool` warm/cache/adopt/build paths and
/// LRU eviction, and the `Service` atomic-swap runtime — concurrent
/// replays must be bit-identical to serial ones, including across a live
/// customize swap (epoch pinning).
///
/// Every suite name starts with `Serve` so the TSan CI job can pick the
/// whole subsystem up with `--gtest_filter='Serve*'`.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/digest.hpp"
#include "graph/generators.hpp"
#include "multilevel/builder.hpp"
#include "resilience/fault.hpp"
#include "serve/pool.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "solver/amg.hpp"
#include "solver/handle.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis::serve {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

/// RAII temp file: removed on scope exit even when an assertion fails.
struct TempFile {
  explicit TempFile(const char* name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

/// XOR one byte of a file in place.
void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
  ASSERT_TRUE(f.good()) << path;
}

std::uint64_t level_digest(const multilevel::OperatorLevel& l) {
  std::uint64_t h = check::digest(l.a);
  h = check::digest_combine(h, check::digest(l.p));
  h = check::digest_combine(h, check::digest(l.r));
  h = check::digest_combine(h, check::digest(l.inv_diag));
  return h;
}

void expect_levels_equal(const std::vector<multilevel::OperatorLevel>& x,
                         const std::vector<multilevel::OperatorLevel>& y, const char* what) {
  ASSERT_EQ(x.size(), y.size()) << what;
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(level_digest(x[i]), level_digest(y[i])) << what << " level " << i;
    EXPECT_EQ(x[i].num_aggregates, y[i].num_aggregates) << what << " level " << i;
  }
}

/// A small Galerkin hierarchy the service tests share the shape of.
multilevel::Options small_hierarchy_options() {
  multilevel::Options mo;
  mo.min_coarse_size = 40;
  return mo;
}

// ------------------------------------------------------------- snapshots

TEST(ServeSnapshot, MatrixRoundTripZeroCopy) {
  const graph::CrsMatrix a = graph::laplace2d(16, 12);
  TempFile file("serve_matrix.snap");
  save_snapshot(file.path, a);

  const SnapshotView snap = SnapshotView::open(file.path);
  EXPECT_TRUE(snap.contains("a"));
  EXPECT_FALSE(snap.contains("hierarchy"));
  EXPECT_GT(snap.file_size(), 0u);
  EXPECT_GE(snap.sections().size(), 4u);  // a.meta + row_map + entries + values

  const MatrixView v = snap.bind_matrix("a");
  EXPECT_EQ(v.num_rows, a.num_rows);
  EXPECT_EQ(v.num_cols, a.num_cols);
  EXPECT_EQ(v.num_entries(), a.num_entries());

  // Zero copies: binding twice lands on the same bytes of the mapping.
  const MatrixView v2 = snap.bind_matrix("a");
  EXPECT_EQ(v.row_map.data(), v2.row_map.data());
  EXPECT_EQ(v.values.data(), v2.values.data());

  const graph::CrsMatrix copy = snap.materialize_matrix("a");
  EXPECT_EQ(copy.row_map, a.row_map);
  EXPECT_EQ(copy.entries, a.entries);
  EXPECT_EQ(copy.values, a.values);
  EXPECT_EQ(check::digest(copy), check::digest(a));
}

TEST(ServeSnapshot, GraphAndPartitionRoundTrip) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(10, 9));
  std::vector<ordinal_t> labels(static_cast<std::size_t>(g.num_rows));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<ordinal_t>(i % 4);
  }

  TempFile file("serve_graph.snap");
  {
    SnapshotWriter w(file.path);
    w.add_graph("g", g);
    w.add_partition("part", labels, 4);
    w.finish();
  }

  const SnapshotView snap = SnapshotView::open(file.path);
  const graph::GraphView gv = snap.bind_graph("g");
  EXPECT_EQ(gv.num_rows, g.num_rows);
  ASSERT_EQ(static_cast<std::size_t>(gv.num_rows) + 1, g.row_map.size());
  for (ordinal_t i = 0; i <= gv.num_rows; ++i) {
    EXPECT_EQ(gv.row_map[i], g.row_map[static_cast<std::size_t>(i)]);
  }

  ordinal_t num_parts = 0;
  const std::span<const ordinal_t> bound = snap.bind_partition("part", &num_parts);
  EXPECT_EQ(num_parts, 4);
  ASSERT_EQ(bound.size(), labels.size());
  EXPECT_EQ(check::digest(std::vector<ordinal_t>(bound.begin(), bound.end())),
            check::digest(labels));

  EXPECT_THROW((void)snap.bind_matrix("nope"), SnapshotError);
}

TEST(ServeSnapshot, SolveOnMaterializedMatchesOriginal) {
  const graph::CrsMatrix a = graph::laplace2d(14, 14);
  TempFile file("serve_solve.snap");
  save_snapshot(file.path, a);
  const SnapshotView snap = SnapshotView::open(file.path);
  const graph::CrsMatrix loaded = snap.materialize_matrix("a");

  const std::vector<scalar_t> b =
      solver::random_vector(a.num_rows, /*seed=*/7);
  std::vector<scalar_t> x1(static_cast<std::size_t>(a.num_rows), 0.0);
  std::vector<scalar_t> x2 = x1;
  solver::SolveHandle h1("cg", "jacobi", Context::serial());
  solver::SolveHandle h2("cg", "jacobi", Context::serial());
  EXPECT_TRUE(h1.solve(a, b, x1).converged);
  EXPECT_TRUE(h2.solve(loaded, b, x2).converged);
  EXPECT_EQ(check::digest(x1), check::digest(x2));
}

TEST(ServeSnapshot, TruncatedFileRejected) {
  const graph::CrsMatrix a = graph::laplace2d(12, 12);
  TempFile file("serve_trunc.snap");
  save_snapshot(file.path, a);

  const std::uint64_t full = std::filesystem::file_size(file.path);
  ASSERT_GT(full, 128u);
  std::filesystem::resize_file(file.path, full - 128);
  EXPECT_THROW((void)SnapshotView::open(file.path), SnapshotError);

  // Even a single missing byte is a rejection, not a short read.
  std::filesystem::resize_file(file.path, full - 129);
  EXPECT_THROW((void)SnapshotView::open(file.path), SnapshotError);
}

TEST(ServeSnapshot, BitFlipRejectedAndNamed) {
  const graph::CrsMatrix a = graph::laplace2d(12, 12);
  TempFile file("serve_flip.snap");
  save_snapshot(file.path, a);

  // Find where a.values lives, then corrupt one byte of it.
  SectionInfo target{};
  {
    const SnapshotView probe = SnapshotView::open(file.path);
    for (const SectionInfo& s : probe.sections()) {
      if (std::string(s.name) == "a.values") target = s;
    }
    ASSERT_GT(target.size, 0u);
  }  // probe unmapped before we rewrite the file
  flip_byte(file.path, target.offset + target.size / 2);

  try {
    (void)SnapshotView::open(file.path);
    FAIL() << "corrupted snapshot was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "a.values");
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos) << e.what();
  }

  // verify=false maps without digesting — the escape hatch stays open for
  // tooling, but it is an explicit opt-out.
  const SnapshotView unchecked = SnapshotView::open(file.path, /*verify=*/false);
  EXPECT_TRUE(unchecked.contains("a"));
}

TEST(ServeSnapshot, VersionAndMagicMismatchRejected) {
  const graph::CrsMatrix a = graph::laplace2d(8, 8);
  TempFile file("serve_version.snap");

  // Header layout: magic occupies bytes [0, 8), version is the u32 at 8.
  save_snapshot(file.path, a);
  flip_byte(file.path, 8);
  try {
    (void)SnapshotView::open(file.path);
    FAIL() << "version-mismatched snapshot was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }

  save_snapshot(file.path, a);
  flip_byte(file.path, 0);
  EXPECT_THROW((void)SnapshotView::open(file.path), SnapshotError);

  EXPECT_THROW((void)SnapshotView::open(temp_path("serve_missing.snap")), SnapshotError);
}

TEST(ServeSnapshot, HierarchyRoundTripKeepsWarmRebuild) {
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  multilevel::Builder builder(small_hierarchy_options());
  multilevel::HierarchyHandle built;
  (void)builder.build_galerkin(a, built);
  ASSERT_GE(built.ops().size(), 2u);

  TempFile file("serve_hier.snap");
  save_snapshot(file.path, a, &built);
  const SnapshotView snap = SnapshotView::open(file.path);
  EXPECT_EQ(snap.hierarchy_levels("hierarchy"),
            static_cast<int>(built.ops().size()));
  EXPECT_TRUE(snap.hierarchy_has_workspace("hierarchy"));

  multilevel::HierarchyHandle loaded;
  snap.load_hierarchy("hierarchy", loaded);
  expect_levels_equal(built.ops(), loaded.ops(), "loaded hierarchy");

  // The serialized rebuild workspace keeps the warm customize contract:
  // a value-only replay on the loaded handle matches the replay on the
  // handle that was saved, level for level.
  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 1.25;
  multilevel::Builder rebuilder(small_hierarchy_options());
  (void)builder.rebuild_galerkin(a2, built);
  (void)rebuilder.rebuild_galerkin(a2, loaded);
  expect_levels_equal(built.ops(), loaded.ops(), "warm rebuild after load");
}

TEST(ServeSnapshot, SolveOnlyRestoreRejectsRebuild) {
  const graph::CrsMatrix a = graph::laplace2d(20, 20);
  multilevel::Builder builder(small_hierarchy_options());
  multilevel::HierarchyHandle built;
  (void)builder.build_galerkin(a, built);

  // Restoring levels without the workspace yields a hierarchy that can
  // solve but must refuse the warm replay instead of serving stale values.
  multilevel::HierarchyHandle solve_only;
  std::vector<multilevel::OperatorLevel> ops = built.ops();
  multilevel::restore_galerkin(solve_only, std::move(ops), {},
                               multilevel::StopReason::CoarseEnough);
  EXPECT_EQ(solve_only.ops().size(), built.ops().size());
  EXPECT_TRUE(multilevel::galerkin_workspace(solve_only).empty());
  EXPECT_THROW((void)builder.rebuild_galerkin(a, solve_only), std::logic_error);
}

#if PARMIS_FAULT_ENABLED
TEST(ServeSnapshotFault, ArmedCorruptionRejectsValidFile) {
  const graph::CrsMatrix a = graph::laplace2d(8, 8);
  TempFile file("serve_fault.snap");
  save_snapshot(file.path, a);

  resilience::disarm_faults();
  resilience::arm_faults_spec("serve.snapshot.corrupt");
  EXPECT_THROW((void)SnapshotView::open(file.path), SnapshotError);
  resilience::disarm_faults();
  EXPECT_TRUE(SnapshotView::open(file.path).contains("a"));
}
#endif

// ------------------------------------------------------------ handle pool

TEST(ServePool, EnsureWalksWarmCacheBuildPaths) {
  const graph::CrsMatrix a = graph::laplace2d(10, 10);
  graph::CrsMatrix a1 = a;
  for (scalar_t& v : a1.values) v *= 1.5;
  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 2.0;

  HandlePool::Config cfg;
  cfg.solver = "cg";
  cfg.prec = "jacobi";
  cfg.size = 1;
  cfg.cache_capacity = 2;
  HandlePool pool(cfg);
  HandlePool::Lease lease = pool.acquire();
  HandlePool::Entry& e = lease.entry();

  pool.ensure(e, PrecKey{0, ""}, a);   // cold: full build
  pool.ensure(e, PrecKey{0, ""}, a);   // warm: already installed
  pool.ensure(e, PrecKey{1, ""}, a1);  // miss: park epoch 0, build epoch 1
  pool.ensure(e, PrecKey{0, ""}, a);   // LRU hit: park epoch 1, re-adopt epoch 0
  pool.ensure(e, PrecKey{2, ""}, a2);  // miss: park epoch 0 (LRU {1, 0}), build
  pool.ensure(e, PrecKey{1, ""}, a1);  // parking epoch 2 evicts epoch 1 (the
                                       // LRU victim) — so this misses: build

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 1u);
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.prec_builds, 4u);
  EXPECT_EQ(stats.level_adoptions, 0u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ServePool, PrecCacheIsLru) {
  PrecCache cache(2);
  // The cache stores opaque setups; identity (the same pointer coming
  // back, not a copy) is the property under test, so park a real setup
  // released from a handle.
  const graph::CrsMatrix a = graph::laplace2d(6, 6);
  solver::SolveHandle h("cg", "jacobi", Context::serial());
  std::vector<scalar_t> b(static_cast<std::size_t>(a.num_rows), 1.0);
  std::vector<scalar_t> x = b;
  (void)h.solve(a, b, x);
  std::unique_ptr<solver::Preconditioner> p0 = h.release_preconditioner();
  ASSERT_NE(p0, nullptr);
  solver::Preconditioner* raw0 = p0.get();

  cache.put(PrecKey{0, ""}, std::move(p0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.take(PrecKey{1, ""}), nullptr);  // miss leaves the slot alone
  EXPECT_EQ(cache.size(), 1u);

  std::unique_ptr<solver::Preconditioner> back = cache.take(PrecKey{0, ""});
  EXPECT_EQ(back.get(), raw0);  // same setup comes back, not a copy
  EXPECT_EQ(cache.size(), 0u);

  // Refill past capacity: the least-recently-used key is the one evicted.
  cache.put(PrecKey{0, ""}, std::move(back));
  cache.put(PrecKey{1, ""}, nullptr);  // null is a no-op
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ServePool, AmgMissAdoptsPublishedLevels) {
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  multilevel::Builder builder(small_hierarchy_options());
  multilevel::HierarchyHandle h;
  const std::vector<multilevel::OperatorLevel> levels = builder.build_galerkin(a, h);

  HandlePool::Config cfg;
  cfg.solver = "cg";
  cfg.prec = "amg";
  cfg.size = 1;
  HandlePool pool(cfg);
  HandlePool::Lease lease = pool.acquire();
  HandlePool::Entry& e = lease.entry();
  pool.ensure(e, PrecKey{0, ""}, a, &levels);
  pool.ensure(e, PrecKey{0, ""}, a, &levels);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.level_adoptions, 1u);  // adopted the published stack...
  EXPECT_EQ(stats.prec_builds, 0u);      // ...never re-ran aggregation+SpGEMM
  EXPECT_EQ(stats.warm_hits, 1u);

  const auto* amg = dynamic_cast<const solver::AmgHierarchy*>(e.handle.preconditioner());
  ASSERT_NE(amg, nullptr);

  std::vector<scalar_t> b = solver::random_vector(a.num_rows, 3);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0.0);
  EXPECT_TRUE(e.handle.solve(a, b, x).converged);
}

TEST(ServePool, ConcurrentLeasesMatchSerialDigests) {
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const int kSolves = 8;

  // Serial reference: one digest per rhs seed.
  std::vector<std::uint64_t> expected(kSolves);
  {
    solver::SolveHandle h("cg", "jacobi", Context::serial());
    std::vector<scalar_t> b, x;
    for (int i = 0; i < kSolves; ++i) {
      b = solver::random_vector(a.num_rows, static_cast<std::uint64_t>(i + 1));
      x.assign(static_cast<std::size_t>(a.num_rows), 0.0);
      EXPECT_TRUE(h.solve(a, b, x).converged);
      expected[static_cast<std::size_t>(i)] = check::digest(x);
    }
  }

  HandlePool::Config cfg;
  cfg.solver = "cg";
  cfg.prec = "jacobi";
  cfg.size = 2;  // fewer entries than threads: leases must block + rotate
  HandlePool pool(cfg);

  std::vector<std::uint64_t> got(kSolves, 0);
  std::vector<std::thread> workers;
  workers.reserve(kSolves);
  for (int i = 0; i < kSolves; ++i) {
    workers.emplace_back([&, i] {
      HandlePool::Lease lease = pool.acquire();
      HandlePool::Entry& e = lease.entry();
      pool.ensure(e, PrecKey{0, ""}, a);
      e.b = solver::random_vector(a.num_rows, static_cast<std::uint64_t>(i + 1));
      e.x.assign(static_cast<std::size_t>(a.num_rows), 0.0);
      (void)e.handle.solve(a, e.b, e.x);
      got[static_cast<std::size_t>(i)] = check::digest(e.x);
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(got, expected);
  EXPECT_EQ(pool.stats().acquires, static_cast<std::uint64_t>(kSolves));
}

// --------------------------------------------------------------- service

Service::Options jacobi_service_options(std::size_t pool_size = 2) {
  Service::Options o;
  o.pool.solver = "cg";
  o.pool.prec = "jacobi";
  o.pool.size = pool_size;
  return o;
}

Service::Options amg_service_options(std::size_t pool_size = 4) {
  Service::Options o;
  o.pool.solver = "cg";
  o.pool.prec = "amg";
  o.pool.size = pool_size;
  return o;
}

/// An AMG service over laplace2d(24,24) with the full rebuild workspace.
Service make_amg_service(const graph::CrsMatrix& a, std::size_t pool_size = 4) {
  multilevel::Builder builder(small_hierarchy_options());
  multilevel::HierarchyHandle h;
  (void)builder.build_galerkin(a, h);
  return Service(amg_service_options(pool_size), a, h.ops(),
                 multilevel::galerkin_workspace(h));
}

TEST(ServeService, SolveMatchesDirectHandle) {
  const graph::CrsMatrix a = graph::laplace2d(18, 18);
  Service service(jacobi_service_options(), a);

  ServeRequest req;
  req.id = 0;
  req.rhs_seed = 42;
  req.epoch = 0;
  std::vector<scalar_t> x_out(static_cast<std::size_t>(a.num_rows), 0.0);
  const RequestOutcome out = service.solve(req, x_out);
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.epoch, 0u);
  EXPECT_STREQ(out.bottom_solve, "");  // jacobi stack: no AMG coarse solve
  ASSERT_EQ(out.attempts.size(), 1u);  // record_attempts default

  solver::SolveHandle h("cg", "jacobi", Context::serial());
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 42);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0.0);
  const solver::IterResult& r = h.solve(a, b, x);
  EXPECT_EQ(out.iterations, r.iterations);
  EXPECT_EQ(out.solution_digest, check::digest(x));
  EXPECT_EQ(out.solution_digest, check::digest(x_out));
}

TEST(ServeService, FromSnapshotReportsBottomSolve) {
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  multilevel::Builder builder(small_hierarchy_options());
  multilevel::HierarchyHandle h;
  (void)builder.build_galerkin(a, h);

  TempFile file("serve_service.snap");
  save_snapshot(file.path, a, &h);
  const SnapshotView snap = SnapshotView::open(file.path);
  Service service = Service::from_snapshot(amg_service_options(), snap);
  EXPECT_TRUE(service.can_rebuild());

  ServeRequest req;
  req.rhs_seed = 5;
  const RequestOutcome out = service.solve(req);
  EXPECT_TRUE(out.converged);
  EXPECT_STRNE(out.bottom_solve, "");  // AMG stack names its coarse solve
  EXPECT_EQ(service.pool().stats().level_adoptions, 1u);
}

TEST(ServeService, ReplayThreadedMatchesSerial) {
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  const std::vector<ServeRequest> requests = make_requests(24, /*seed0=*/1, /*epoch0=*/0);

  Service serial_service = make_amg_service(a);
  ReplayOptions serial_opts;
  serial_opts.threads = 1;
  const ReplayResult serial = replay(serial_service, requests, serial_opts);
  EXPECT_EQ(serial.stats.converged, 24u);
  EXPECT_GT(serial.stats.p99_ms, 0.0);
  EXPECT_GE(serial.stats.p99_ms, serial.stats.p50_ms);

  Service threaded_service = make_amg_service(a);
  ReplayOptions threaded_opts;
  threaded_opts.threads = 4;
  const ReplayResult threaded = replay(threaded_service, requests, threaded_opts);

  EXPECT_EQ(threaded.stats.combined_digest, serial.stats.combined_digest);
  ASSERT_EQ(threaded.outcomes.size(), serial.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(threaded.outcomes[i].solution_digest, serial.outcomes[i].solution_digest)
        << "request " << i;
    EXPECT_EQ(threaded.outcomes[i].iterations, serial.outcomes[i].iterations)
        << "request " << i;
  }
}

TEST(ServeService, CustomizeSwapIsDeterministicAcrossThreads) {
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  const std::size_t kRequests = 24;
  const std::size_t kSwapAt = 9;
  const std::vector<ServeRequest> requests =
      make_requests(kRequests, /*seed0=*/1, /*epoch0=*/0, kSwapAt);

  auto run = [&](int threads) {
    Service service = make_amg_service(a);
    ReplayOptions opts;
    opts.threads = threads;
    opts.customize_at = kSwapAt;
    return replay(service, requests, opts);
  };

  const ReplayResult serial = run(1);
  const ReplayResult threaded = run(4);

  EXPECT_EQ(serial.stats.final_epoch, 1u);
  EXPECT_EQ(threaded.stats.final_epoch, 1u);
  EXPECT_EQ(serial.stats.converged, kRequests);
  EXPECT_EQ(threaded.stats.combined_digest, serial.stats.combined_digest);
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(serial.outcomes[i].epoch, i < kSwapAt ? 0u : 1u) << "request " << i;
    EXPECT_EQ(threaded.outcomes[i].solution_digest, serial.outcomes[i].solution_digest)
        << "request " << i;
  }
  // The swap actually changed the operator: pre- and post-swap solves of
  // the same seed sequence cannot collide unless the scale was a no-op.
  EXPECT_NE(serial.outcomes[0].solution_digest,
            serial.outcomes[kSwapAt].solution_digest);
}

TEST(ServeService, CustomizeMatchesColdBuild) {
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 1.25;

  // Warm: customize replays the hierarchy value-only and publishes.
  Service warm = make_amg_service(a);
  const std::uint64_t e1 = warm.customize(a2.values);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(warm.state(e1)->values_digest, check::digest(a2.values));

  // Cold: a fresh service built from scratch on the refreshed values.
  Service cold = make_amg_service(a2);

  ServeRequest req;
  req.rhs_seed = 11;
  req.epoch = e1;
  const RequestOutcome warm_out = warm.solve(req);
  req.epoch = 0;
  const RequestOutcome cold_out = cold.solve(req);
  EXPECT_TRUE(warm_out.converged);
  EXPECT_EQ(warm_out.solution_digest, cold_out.solution_digest);
  EXPECT_EQ(warm_out.iterations, cold_out.iterations);
}

TEST(ServeService, CustomizeValidatesAndExpiresHistory) {
  const graph::CrsMatrix a = graph::laplace2d(12, 12);

  // Wrong-size values are rejected before anything is rebuilt.
  Service service = make_amg_service(a);
  std::vector<scalar_t> short_values(3, 1.0);
  EXPECT_THROW((void)service.customize(short_values), std::invalid_argument);
  EXPECT_EQ(service.epoch(), 0u);

  // A solve-only hierarchy (no rebuild workspace) refuses to customize
  // rather than serve a stale hierarchy against fresh values.
  multilevel::Builder builder(small_hierarchy_options());
  multilevel::HierarchyHandle h;
  (void)builder.build_galerkin(a, h);
  Service solve_only(amg_service_options(), a, h.ops(), /*workspace=*/{});
  EXPECT_FALSE(solve_only.can_rebuild());
  EXPECT_THROW((void)solve_only.customize(a.values), std::logic_error);

  // A hierarchy-less service customizes fine: there is nothing to replay.
  Service::Options opts = jacobi_service_options();
  opts.max_history = 1;
  Service plain(std::move(opts), a);
  EXPECT_FALSE(plain.can_rebuild());
  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 2.0;
  EXPECT_EQ(plain.customize(a2.values), 1u);
  EXPECT_EQ(plain.current()->values_digest, check::digest(a2.values));

  // max_history = 1: epoch 0 fell out of the window, a pinned request for
  // it must throw instead of silently serving the wrong operator.
  EXPECT_THROW((void)plain.state(0), std::out_of_range);

  // republish(): epoch bump, same arrays — the customize-failure recovery.
  const std::shared_ptr<const ServingState> before = plain.current();
  EXPECT_EQ(plain.republish(), 2u);
  const std::shared_ptr<const ServingState> after = plain.current();
  EXPECT_EQ(after->epoch, 2u);
  EXPECT_EQ(after->a, before->a);  // shared, not copied
  EXPECT_EQ(after->values_digest, before->values_digest);
}

// ---------------------------------------------------------------- replay

TEST(ServeReplay, RequestPinningFollowsCustomizeAt) {
  const std::vector<ServeRequest> plain = make_requests(6, /*seed0=*/10, /*epoch0=*/3);
  ASSERT_EQ(plain.size(), 6u);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].id, i);
    EXPECT_EQ(plain[i].rhs_seed, 10u + i);
    EXPECT_EQ(plain[i].epoch, 3u);
  }

  const std::vector<ServeRequest> swap = make_requests(6, 1, 3, /*customize_at=*/4);
  for (std::size_t i = 0; i < swap.size(); ++i) {
    EXPECT_EQ(swap[i].epoch, i < 4 ? 3u : 4u) << "request " << i;
  }

  // Out-of-range swap points disable pinning rather than deadlock a
  // replay that will never publish the next epoch.
  for (const ServeRequest& r : make_requests(6, 1, 3, /*customize_at=*/6)) {
    EXPECT_EQ(r.epoch, 3u);
  }
}

}  // namespace
}  // namespace parmis::serve
