/// \file test_obs.cpp
/// \brief Observability layer: disabled-path zero-cost, span recording and
/// nesting, per-thread attribution, Chrome-trace well-formedness, the
/// Report/JsonArrayWriter schema helpers, Context trace pinning, and the
/// tracing-never-changes-results determinism guard.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/mis2.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/spgemm.hpp"
#include "multilevel/builder.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "parallel/context.hpp"
#include "parallel/execution.hpp"
#include "partition/interface.hpp"
#include "solver/cg.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

/// Every trace test restores the process-global default (tracing off,
/// buffers empty) so suites compose in any order.
class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(false);
    obs::clear_events();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::clear_events();
  }
};

using ObsContext = ObsTrace;
using ObsDeterminism = ObsTrace;

std::vector<obs::TraceEvent> events_named(const char* name) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : obs::collect_events()) {
    if (!std::strcmp(e.name, name)) out.push_back(e);
  }
  return out;
}

TEST_F(ObsTrace, DisabledSpansCostNothing) {
  const std::uint64_t events_before = obs::total_events();
  const std::uint64_t bytes_before = obs::allocated_bytes();
  for (int i = 0; i < 100000; ++i) {
    PARMIS_SPAN("obs.test.disabled");
    obs::Span extra("obs.test.disabled2");
    extra.arg("i", i);
    EXPECT_FALSE(extra.active());
    obs::counter("obs.test.counter", i);
  }
  // The zero-allocation contract: a disabled span site neither records an
  // event nor touches block storage.
  EXPECT_EQ(obs::total_events(), events_before);
  EXPECT_EQ(obs::allocated_bytes(), bytes_before);
}

TEST_F(ObsTrace, DisabledSpansAreFast) {
  // Loose sanity bound, not a benchmark (bench/obs_overhead pins the real
  // number): a million disabled span sites must be effectively free.
  Timer t;
  for (int i = 0; i < 1000000; ++i) {
    PARMIS_SPAN("obs.test.fast");
  }
  EXPECT_LT(t.seconds(), 0.25);
}

TEST_F(ObsTrace, SpanRecordsNameArgsAndDuration) {
  obs::set_tracing(true);
  {
    obs::Span span("obs.test.record");
    span.arg("alpha", 7);
    span.arg("beta", -3);
    span.arg("dropped", 99);  // max two args; silently ignored
    EXPECT_TRUE(span.active());
  }
  obs::set_tracing(false);

  const std::vector<obs::TraceEvent> got = events_named("obs.test.record");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GE(got[0].dur_ns, 0);
  ASSERT_EQ(got[0].nargs, 2);
  EXPECT_STREQ(got[0].arg_name[0], "alpha");
  EXPECT_EQ(got[0].arg_val[0], 7);
  EXPECT_STREQ(got[0].arg_name[1], "beta");
  EXPECT_EQ(got[0].arg_val[1], -3);
}

TEST_F(ObsTrace, NestedSpansAreContained) {
  obs::set_tracing(true);
  {
    obs::Span outer("obs.test.outer");
    {
      obs::Span inner("obs.test.inner");
    }
  }
  obs::set_tracing(false);

  const std::vector<obs::TraceEvent> outer = events_named("obs.test.outer");
  const std::vector<obs::TraceEvent> inner = events_named("obs.test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_LE(outer[0].start_ns, inner[0].start_ns);
  EXPECT_GE(outer[0].start_ns + outer[0].dur_ns, inner[0].start_ns + inner[0].dur_ns);
}

TEST_F(ObsTrace, CounterSamplesAreRecorded) {
  obs::set_tracing(true);
  obs::counter("obs.test.gauge", 42);
  obs::set_tracing(false);

  const std::vector<obs::TraceEvent> got = events_named("obs.test.gauge");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dur_ns, -1);  // counter marker
  ASSERT_EQ(got[0].nargs, 1);
  EXPECT_EQ(got[0].arg_val[0], 42);
}

TEST_F(ObsTrace, ClearEventsEmptiesBuffers) {
  obs::set_tracing(true);
  {
    PARMIS_SPAN("obs.test.cleared");
  }
  obs::set_tracing(false);
  EXPECT_GT(obs::total_events(), 0u);
  obs::clear_events();
  EXPECT_EQ(obs::total_events(), 0u);
  EXPECT_TRUE(obs::collect_events().empty());
}

TEST_F(ObsTrace, SummarizeAggregatesByName) {
  obs::set_tracing(true);
  for (int i = 0; i < 5; ++i) {
    PARMIS_SPAN("obs.test.sum_a");
  }
  {
    PARMIS_SPAN("obs.test.sum_b");
  }
  obs::set_tracing(false);

  const std::vector<obs::SpanSummary> sums = obs::summarize_spans();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0].name, "obs.test.sum_a");  // sorted by name
  EXPECT_EQ(sums[0].count, 5u);
  EXPECT_EQ(sums[1].name, "obs.test.sum_b");
  EXPECT_EQ(sums[1].count, 1u);
  EXPECT_GE(sums[0].total_seconds, sums[0].max_seconds);
  EXPECT_LE(sums[0].min_seconds, sums[0].max_seconds);
}

#ifdef PARMIS_HAVE_OPENMP
TEST_F(ObsTrace, ThreadAttributionUnderOpenMP) {
  // Per-chunk spans record on the worker that ran the chunk, so a traced
  // parallel kernel shows more than one tid. Thread count pinned
  // explicitly: single-core CI hosts default to one thread.
  const graph::CrsGraph g = graph::random_geometric_3d(4000, 12.0, 7);
  obs::set_tracing(true, /*chunk_sample_every=*/1);
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 4);
    (void)core::mis2(g);
  }
  obs::set_tracing(false);

  std::set<std::uint32_t> tids;
  for (const obs::TraceEvent& e : obs::collect_events()) {
    if (!std::strcmp(e.name, "par.chunk")) tids.insert(e.tid);
  }
  EXPECT_GE(tids.size(), 2u);
}

TEST_F(ObsTrace, ChunkSamplingZeroSuppressesChunkSpans) {
  const graph::CrsGraph g = graph::random_geometric_3d(2000, 12.0, 7);
  obs::set_tracing(true, /*chunk_sample_every=*/0);
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 4);
    (void)core::mis2(g);
  }
  obs::set_tracing(false);
  EXPECT_TRUE(events_named("par.chunk").empty());
  // The algorithm-level spans still record.
  EXPECT_FALSE(events_named("mis2.run").empty());
}
#endif  // PARMIS_HAVE_OPENMP

/// Minimal structural JSON validator: brackets/braces balance outside of
/// strings, strings terminate, no trailing garbage. Catches the classes of
/// emitter bug (missing comma handling is caught by real parsers in CI's
/// python3 smoke; here we guard nesting and escaping).
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(ObsTrace, ChromeTraceJsonIsWellFormed) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(8, 8, 8));
  obs::set_tracing(true, 1);
  (void)core::mis2(g);
  obs::counter("obs.test.ctr", 3);
  obs::set_tracing(false);

  const std::string json = obs::chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(json_balanced(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("mis2.run"), std::string::npos);

  // Round-trip through the file writer.
  const std::string path = ::testing::TempDir() + "parmis_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string file_contents;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) file_contents.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(file_contents, json);
}

TEST_F(ObsContext, ScopePinsAndRestoresTracing) {
  ASSERT_FALSE(obs::tracing_enabled());

  Context on = Context::serial();
  on.trace.mode = obs::TraceOptions::Mode::On;
  on.trace.chunk_sample_every = 8;
  {
    Context::Scope scope(on);
    EXPECT_TRUE(obs::tracing_enabled());
    EXPECT_EQ(obs::trace_state().chunk_sample_every, 8);
  }
  EXPECT_FALSE(obs::tracing_enabled());

  // Off pins tracing off inside an enabled region; Inherit leaves it alone.
  obs::set_tracing(true, 2);
  Context off = Context::serial();
  off.trace.mode = obs::TraceOptions::Mode::Off;
  {
    Context::Scope scope(off);
    EXPECT_FALSE(obs::tracing_enabled());
  }
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_EQ(obs::trace_state().chunk_sample_every, 2);

  Context inherit = Context::serial();  // trace.mode defaults to Inherit
  {
    Context::Scope scope(inherit);
    EXPECT_TRUE(obs::tracing_enabled());
    EXPECT_EQ(obs::trace_state().chunk_sample_every, 2);
  }
  EXPECT_TRUE(obs::tracing_enabled());
}

/// Tracing must never change what any algorithm computes: the full
/// mis2 → partition → hierarchy → solve chain is bit-identical with
/// tracing off and on, per backend.
TEST_F(ObsDeterminism, TracingNeverChangesResults) {
  const graph::CrsGraph g = graph::random_geometric_3d(2500, 12.0, 17);
  const graph::CrsMatrix a = graph::laplacian_matrix(g, 1.0);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 1);

  struct Snapshot {
    std::vector<char> mis;
    std::vector<ordinal_t> parts;
    std::vector<offset_t> coarse_row_map;
    std::vector<scalar_t> x;
    int iterations = 0;
    bool operator==(const Snapshot& o) const {
      return mis == o.mis && parts == o.parts && coarse_row_map == o.coarse_row_map &&
             x == o.x && iterations == o.iterations;
    }
  };
  auto run = [&] {
    Snapshot s;
    s.mis = core::mis2(g).in_set;
    const partition::WeightedGraph wg = partition::WeightedGraph::unit(graph::CrsGraph(g));
    s.parts = partition::make_partitioner("multilevel-mis2")->run(wg, 4).part;
    multilevel::Options mo;
    mo.min_coarse_size = 100;
    multilevel::HierarchyHandle handle;
    const multilevel::Builder builder(mo);
    (void)builder.build_galerkin(a, handle);
    s.coarse_row_map = handle.ops().back().a.row_map;
    s.x.assign(static_cast<std::size_t>(a.num_rows), 0);
    solver::IterOptions opts;
    opts.tolerance = 1e-10;
    opts.max_iterations = 200;
    s.iterations = solver::cg(a, b, s.x, opts, nullptr).iterations;
    return s;
  };

  std::vector<std::pair<par::Backend, int>> configs{{par::Backend::Serial, 1}};
#ifdef PARMIS_HAVE_OPENMP
  configs.emplace_back(par::Backend::OpenMP, 4);
#endif
  for (const auto& [backend, threads] : configs) {
    par::ScopedExecution scope(backend, threads);
    obs::set_tracing(false);
    const Snapshot off = run();
    obs::set_tracing(true, 1);
    const Snapshot on = run();
    obs::set_tracing(false);
    obs::clear_events();
    EXPECT_TRUE(off == on) << "tracing changed results on backend "
                           << (backend == par::Backend::Serial ? "Serial" : "OpenMP");
  }
}

// ------------------------------------------------------------ Report layer

TEST(ObsReport, InsertionOrderAndTypes) {
  obs::Report r;
  r.set("name", "power\"law");  // escaped
  r.set("rows", static_cast<std::int64_t>(123));
  r.set("ratio", 0.5);
  r.set("ok", true);
  r.set("levels", std::vector<std::int64_t>{3, 2, 1});
  EXPECT_EQ(r.to_json(),
            "{\"name\": \"power\\\"law\", \"rows\": 123, \"ratio\": 0.5, "
            "\"ok\": true, \"levels\": [3,2,1]}");
}

TEST(ObsReport, OverwriteKeepsFirstPosition) {
  obs::Report r;
  r.set("a", 1);
  r.set("b", 2);
  r.set("a", 9);  // overwrite in place, not append
  EXPECT_EQ(r.to_json(), "{\"a\": 9, \"b\": 2}");
}

TEST(ObsReport, JsonArrayWriterRoundTrip) {
  const std::string path = ::testing::TempDir() + "parmis_report_test.json";
  {
    obs::JsonArrayWriter w(path);
    ASSERT_TRUE(w.ok());
    obs::Report r;
    r.set("i", 1);
    w.row(r.to_json());
    r.set("i", 2);
    w.row(r.to_json());
    EXPECT_TRUE(w.close());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[1024];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, "[\n{\"i\": 1},\n{\"i\": 2}\n]\n");
}

TEST(ObsReport, SpanSummaryAdapter) {
  obs::set_tracing(false);
  obs::clear_events();
  obs::Report empty;
  obs::add_span_summary(empty);
  EXPECT_TRUE(empty.empty());  // nothing buffered -> no "spans" key

  obs::set_tracing(true);
  {
    PARMIS_SPAN("obs.test.adapter");
  }
  obs::set_tracing(false);
  obs::Report r;
  obs::add_span_summary(r);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"spans\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs.test.adapter\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  obs::clear_events();
}

}  // namespace
}  // namespace parmis
