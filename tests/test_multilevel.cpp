/// \file test_multilevel.cpp
/// \brief Tests for the unified multilevel engine: the `Builder`'s three
/// contraction modes, the zero-allocation warm Galerkin rebuild, the
/// quality guards (coarsening-rate floor, operator-complexity cap), and
/// shim equivalence of the rerouted legacy entry points
/// (`core::multilevel_coarsen`, `solver::AmgHierarchy::build`) against
/// inline replicas of their pre-refactor loops.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/spgemm.hpp"
#include "multilevel/builder.hpp"
#include "solver/amg.hpp"
#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis::multilevel {
namespace {

graph::CrsGraph mesh_graph() { return test::adjacency_of(graph::laplace2d(24, 24)); }

void expect_same_matrix(const graph::CrsMatrix& a, const graph::CrsMatrix& b,
                        const char* what) {
  EXPECT_EQ(a.num_rows, b.num_rows) << what;
  EXPECT_EQ(a.num_cols, b.num_cols) << what;
  EXPECT_EQ(a.row_map, b.row_map) << what;
  EXPECT_EQ(a.entries, b.entries) << what;
  EXPECT_EQ(a.values, b.values) << what;
}

// ------------------------------------------------------- numeric replays

TEST(SpgemmNumeric, ReplayMatchesColdProduct) {
  const graph::CrsMatrix a = graph::laplace2d(13, 11);
  const graph::CrsMatrix b = graph::laplace2d(13, 11);
  graph::CrsMatrix c = graph::spgemm(a, b);
  const std::vector<scalar_t> cold = c.values;

  // Perturb, replay, expect the exact cold product of the new values.
  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 1.25;
  graph::spgemm_numeric(a2, b, c);
  EXPECT_EQ(c.values, graph::spgemm(a2, b).values);

  // Replaying the original values restores the original product exactly.
  graph::spgemm_numeric(a, b, c);
  EXPECT_EQ(c.values, cold);
}

TEST(SpgemmNumeric, MatrixAddAndTransposeReplay) {
  const graph::CrsMatrix a = graph::laplace2d(9, 8);
  graph::CrsMatrix b = a;
  for (scalar_t& v : b.values) v = -0.5 * v;

  graph::CrsMatrix sum = graph::matrix_add(1.0, a, 2.0, b);
  graph::CrsMatrix b2 = b;
  for (scalar_t& v : b2.values) v *= 3.0;
  graph::matrix_add_numeric(1.0, a, 2.0, b2, sum);
  expect_same_matrix(sum, graph::matrix_add(1.0, a, 2.0, b2), "matrix_add replay");

  graph::CrsMatrix t = graph::transpose_matrix(a);
  const std::vector<offset_t> perm = graph::transpose_permutation(a);
  graph::CrsMatrix a3 = a;
  for (std::size_t i = 0; i < a3.values.size(); ++i) a3.values[i] += static_cast<scalar_t>(i);
  graph::transpose_numeric(a3, perm, t);
  expect_same_matrix(t, graph::transpose_matrix(a3), "transpose replay");
}

// ------------------------------------------------- topology / weighted

/// Inline replica of the pre-refactor `multilevel_coarsen` loop
/// (aggregate through the registry, 5%-reduction stall guard, contract
/// with `coarse_graph`) — the behavior the Builder shim must reproduce.
core::MultilevelHierarchy legacy_multilevel_coarsen(graph::GraphView g,
                                                    const core::MultilevelOptions& opts) {
  core::MultilevelHierarchy h;
  core::CoarsenHandle handle(opts.mis2);
  graph::GraphView view = g;
  const std::unique_ptr<core::Coarsener> coarsener = core::make_coarsener(opts.coarsener);
  core::CoarsenOptions copts;
  copts.mis2 = opts.mis2;
  copts.hem_seed = opts.mis2.seed + 1;
  for (int level = 0; level < opts.max_levels; ++level) {
    if (view.num_rows <= opts.target_vertices) break;
    core::CoarsenLevel lvl;
    (void)coarsener->run(view, {}, handle, copts);
    lvl.aggregation = handle.take_aggregation();
    if (lvl.aggregation.num_aggregates >= view.num_rows ||
        static_cast<double>(lvl.aggregation.num_aggregates) > 0.95 * view.num_rows) {
      break;
    }
    lvl.graph = core::coarse_graph(view, lvl.aggregation);
    h.levels.push_back(std::move(lvl));
    view = h.levels.back().graph;
  }
  return h;
}

TEST(BuilderTopology, MultilevelCoarsenShimMatchesLegacyLoop) {
  const graph::CrsGraph g = mesh_graph();
  for (const char* name : {"mis2", "mis2-basic", "hem"}) {
    core::MultilevelOptions opts;
    opts.coarsener = name;
    opts.target_vertices = 20;
    const core::MultilevelHierarchy legacy = legacy_multilevel_coarsen(g, opts);
    const core::MultilevelHierarchy routed = core::multilevel_coarsen(g, opts);
    ASSERT_EQ(routed.levels.size(), legacy.levels.size()) << name;
    for (std::size_t l = 0; l < legacy.levels.size(); ++l) {
      EXPECT_EQ(routed.levels[l].aggregation.labels, legacy.levels[l].aggregation.labels)
          << name << " level " << l;
      EXPECT_EQ(routed.levels[l].graph.row_map, legacy.levels[l].graph.row_map)
          << name << " level " << l;
      EXPECT_EQ(routed.levels[l].graph.entries, legacy.levels[l].graph.entries)
          << name << " level " << l;
    }
  }
}

TEST(BuilderTopology, StatsDescribeTheHierarchy) {
  const graph::CrsGraph g = mesh_graph();
  Options opts;
  opts.min_coarse_size = 20;
  const Builder builder(opts);
  HierarchyHandle h;
  const std::vector<Step>& steps = builder.build(g, h);
  ASSERT_GE(steps.size(), 2u);

  const HierarchyStats& st = h.build_stats();
  EXPECT_EQ(st.levels, static_cast<int>(steps.size()) + 1);
  ASSERT_EQ(st.level_rows.size(), steps.size() + 1);
  EXPECT_EQ(st.level_rows.front(), g.num_rows);
  for (std::size_t l = 0; l < steps.size(); ++l) {
    EXPECT_EQ(st.level_rows[l + 1], steps[l].coarse.graph.num_rows);
    EXPECT_EQ(st.level_entries[l + 1], steps[l].coarse.graph.num_entries());
  }
  EXPECT_EQ(st.stop, StopReason::CoarseEnough);
  EXPECT_GE(st.grid_complexity, 1.0);
  EXPECT_EQ(h.stats().runs, 1u);
  EXPECT_EQ(h.stats().scratch_grows, 1u);
}

TEST(BuilderWeighted, StepsMatchLegacyWeightedContractionChain) {
  const WeightedGraph wg = WeightedGraph::unit(mesh_graph());
  Options opts;
  opts.min_coarse_size = 20;
  opts.rate_floor = 1.0;
  const Builder builder(opts);
  HierarchyHandle h;
  const std::vector<Step>& steps = builder.build_weighted(wg, h);
  ASSERT_GE(steps.size(), 2u);

  // Replay the same labels through the standalone weighted contraction.
  const WeightedGraph* fine = &wg;
  for (std::size_t l = 0; l < steps.size(); ++l) {
    const WeightedGraph expect = coarsen_weighted(*fine, steps[l].aggregation.labels,
                                                  steps[l].aggregation.num_aggregates);
    EXPECT_EQ(steps[l].coarse.graph.row_map, expect.graph.row_map) << "level " << l;
    EXPECT_EQ(steps[l].coarse.graph.entries, expect.graph.entries) << "level " << l;
    EXPECT_EQ(steps[l].coarse.vertex_weight, expect.vertex_weight) << "level " << l;
    EXPECT_EQ(steps[l].coarse.edge_weight, expect.edge_weight) << "level " << l;
    // Weights conserve: total coarse vertex weight = total fine weight.
    EXPECT_EQ(steps[l].coarse.total_vertex_weight(), wg.total_vertex_weight()) << "level " << l;
    fine = &steps[l].coarse;
  }
}

TEST(BuilderWeighted, RepeatedBuildsReuseLevelStorage) {
  const WeightedGraph wg = WeightedGraph::unit(mesh_graph());
  const Builder builder([] {
    Options o;
    o.min_coarse_size = 20;
    return o;
  }());
  HierarchyHandle h;
  (void)builder.build_weighted(wg, h);
  const std::vector<std::vector<ordinal_t>> first_labels = [&] {
    std::vector<std::vector<ordinal_t>> ls;
    for (const Step& s : h.steps()) ls.push_back(s.aggregation.labels);
    return ls;
  }();
  const std::size_t warm = h.scratch_bytes();

  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<Step>& steps = builder.build_weighted(wg, h);
    EXPECT_EQ(h.scratch_bytes(), warm) << "rep " << rep;
    ASSERT_EQ(steps.size(), first_labels.size()) << "rep " << rep;
    for (std::size_t l = 0; l < steps.size(); ++l) {
      EXPECT_EQ(steps[l].aggregation.labels, first_labels[l]) << "rep " << rep;
    }
  }
  EXPECT_EQ(h.stats().scratch_grows, 1u);  // only the cold build grew
}

TEST(Builder, RateFloorStopsStalledCoarsening) {
  const graph::CrsGraph g = mesh_graph();
  Options opts;
  opts.min_coarse_size = 4;
  opts.rate_floor = 0.01;  // demand a 100x reduction per level: stalls immediately
  const Builder builder(opts);
  HierarchyHandle h;
  const std::vector<Step>& steps = builder.build(g, h);
  EXPECT_TRUE(steps.empty());
  EXPECT_EQ(h.build_stats().stop, StopReason::Stalled);
  EXPECT_EQ(h.build_stats().levels, 1);
}

// ------------------------------------------------------------- Galerkin

/// Inline replica of the pre-refactor `AmgHierarchy::build` level loop
/// (aggregate, tentative prolongator, damped-Jacobi smoothing, Galerkin
/// triple product, stall on no-shrink) for registry coarseners.
struct LegacyAmgLevel {
  graph::CrsMatrix a, p, r;
  std::vector<scalar_t> inv_diag;
};

std::vector<LegacyAmgLevel> legacy_amg_levels(graph::CrsMatrix a_fine,
                                              const solver::AmgOptions& opts,
                                              const std::string& coarsener) {
  std::vector<LegacyAmgLevel> levels;
  core::CoarsenHandle handle(opts.mis2);
  graph::CrsMatrix current = std::move(a_fine);
  for (int lvl = 0; lvl < opts.max_levels; ++lvl) {
    LegacyAmgLevel level;
    level.a = std::move(current);
    level.inv_diag = solver::inverted_diagonal(level.a);
    const bool coarsest =
        level.a.num_rows <= opts.coarse_size || lvl == opts.max_levels - 1;
    if (coarsest) {
      levels.push_back(std::move(level));
      break;
    }
    const graph::CrsGraph adj = graph::remove_self_loops(graph::GraphView(level.a));
    const core::Aggregation agg =
        solver::run_aggregation(adj, coarsener, opts.mis2, handle);
    if (agg.num_aggregates >= level.a.num_rows) {
      levels.push_back(std::move(level));
      break;
    }
    // Tentative prolongator with normalized columns.
    const ordinal_t n = level.a.num_rows;
    std::vector<ordinal_t> agg_size(static_cast<std::size_t>(agg.num_aggregates), 0);
    for (ordinal_t v = 0; v < n; ++v) ++agg_size[static_cast<std::size_t>(agg.labels[v])];
    graph::CrsMatrix phat;
    phat.num_rows = n;
    phat.num_cols = agg.num_aggregates;
    phat.row_map.resize(static_cast<std::size_t>(n) + 1);
    for (ordinal_t v = 0; v <= n; ++v) phat.row_map[static_cast<std::size_t>(v)] = v;
    phat.entries.resize(static_cast<std::size_t>(n));
    phat.values.resize(static_cast<std::size_t>(n));
    for (ordinal_t v = 0; v < n; ++v) {
      const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
      phat.entries[static_cast<std::size_t>(v)] = a;
      phat.values[static_cast<std::size_t>(v)] =
          1.0 / std::sqrt(static_cast<scalar_t>(agg_size[static_cast<std::size_t>(a)]));
    }
    // P = (I - omega D^-1 A) P̂.
    graph::CrsMatrix ap = graph::spgemm(level.a, phat);
    for (ordinal_t i = 0; i < ap.num_rows; ++i) {
      for (offset_t j = ap.row_map[i]; j < ap.row_map[i + 1]; ++j) {
        ap.values[static_cast<std::size_t>(j)] *= level.inv_diag[static_cast<std::size_t>(i)];
      }
    }
    level.p = graph::matrix_add(1.0, phat, -opts.prolongator_omega, ap);
    level.r = graph::transpose_matrix(level.p);
    current = graph::spgemm(level.r, graph::spgemm(level.a, level.p));
    levels.push_back(std::move(level));
  }
  return levels;
}

TEST(BuilderGalerkin, AmgBuildShimMatchesLegacyLoop) {
  const graph::CrsMatrix a = graph::laplace2d(20, 20);
  for (const char* name : {"mis2", "mis2-basic", "hem"}) {
    solver::AmgOptions opts;
    opts.coarsener = name;
    opts.coarse_size = 30;
    const std::vector<LegacyAmgLevel> legacy = legacy_amg_levels(a, opts, name);
    const solver::AmgHierarchy h = solver::AmgHierarchy::build(a, opts);
    ASSERT_EQ(static_cast<std::size_t>(h.num_levels()), legacy.size()) << name;
    for (int l = 0; l < h.num_levels(); ++l) {
      const std::size_t li = static_cast<std::size_t>(l);
      expect_same_matrix(h.level(l).a, legacy[li].a, name);
      expect_same_matrix(h.level(l).p, legacy[li].p, name);
      expect_same_matrix(h.level(l).r, legacy[li].r, name);
      EXPECT_EQ(h.level(l).inv_diag, legacy[li].inv_diag) << name;
    }
  }
}

TEST(BuilderGalerkin, WarmRebuildIsAllocationFreeAndMatchesColdBuild) {
  const graph::CrsMatrix a = graph::laplace2d(26, 26);
  Options opts;
  opts.min_coarse_size = 40;
  const Builder builder(opts);
  HierarchyHandle h;
  (void)builder.build_galerkin(a, h);
  ASSERT_GE(h.ops().size(), 3u);
  const std::size_t warm = h.scratch_bytes();
  const std::uint64_t grows = h.stats().scratch_grows;
  EXPECT_EQ(grows, 1u);  // the cold build

  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 1.75;

  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<OperatorLevel>& rebuilt = builder.rebuild_galerkin(a2, h);
    // Zero-allocation warm-rebuild contract: capacity stable, allocation
    // telemetry unmoved.
    EXPECT_EQ(h.scratch_bytes(), warm) << "rep " << rep;
    EXPECT_EQ(h.stats().scratch_grows, grows) << "rep " << rep;

    // Identical to a cold build of the new values.
    HierarchyHandle cold;
    const std::vector<OperatorLevel>& expect = builder.build_galerkin(a2, cold);
    ASSERT_EQ(rebuilt.size(), expect.size()) << "rep " << rep;
    for (std::size_t l = 0; l < expect.size(); ++l) {
      expect_same_matrix(rebuilt[l].a, expect[l].a, "rebuilt a");
      expect_same_matrix(rebuilt[l].p, expect[l].p, "rebuilt p");
      expect_same_matrix(rebuilt[l].r, expect[l].r, "rebuilt r");
      EXPECT_EQ(rebuilt[l].inv_diag, expect[l].inv_diag) << "rep " << rep << " level " << l;
    }
  }

  // Rebuilding with the original values restores the original hierarchy.
  HierarchyHandle orig;
  const std::vector<OperatorLevel>& expect = builder.build_galerkin(a, orig);
  const std::vector<OperatorLevel>& back = builder.rebuild_galerkin(a, h);
  for (std::size_t l = 0; l < expect.size(); ++l) {
    expect_same_matrix(back[l].a, expect[l].a, "restored a");
  }
  EXPECT_EQ(h.scratch_bytes(), warm);
}

TEST(BuilderGalerkin, RebuildRejectsStructureMismatch) {
  const Builder builder([] {
    Options o;
    o.min_coarse_size = 20;
    return o;
  }());
  HierarchyHandle h;
  EXPECT_THROW((void)builder.rebuild_galerkin(graph::laplace2d(8, 8), h), std::logic_error);

  (void)builder.build_galerkin(graph::laplace2d(16, 16), h);
  EXPECT_THROW((void)builder.rebuild_galerkin(graph::laplace2d(17, 16), h),
               std::invalid_argument);

  // Same shapes and nnz but a shifted sparsity pattern must be rejected
  // too: a positional value replay into a stale pattern would be silently
  // wrong.
  graph::CrsMatrix shifted = graph::laplace2d(16, 16);
  shifted.entries[1] = static_cast<ordinal_t>(shifted.entries[1] + 1);
  EXPECT_THROW((void)builder.rebuild_galerkin(shifted, h), std::invalid_argument);
}

TEST(BuilderWeighted, StalledStepBuffersAreRecycledAcrossBuilds) {
  // A stalled build aggregates into a step it then drops; on a shared
  // handle (the recursive-bisection workload) those size-n buffers must be
  // parked and recycled, not freed and re-allocated every build.
  const WeightedGraph wg = WeightedGraph::unit(mesh_graph());
  Options opts;
  opts.min_coarse_size = 4;
  opts.rate_floor = 0.01;  // demand an impossible reduction: stalls at level 0
  const Builder builder(opts);
  HierarchyHandle h;
  (void)builder.build_weighted(wg, h);
  ASSERT_EQ(h.build_stats().stop, StopReason::Stalled);
  const std::size_t warm = h.scratch_bytes();

  for (int rep = 0; rep < 3; ++rep) {
    (void)builder.build_weighted(wg, h);
    EXPECT_EQ(h.scratch_bytes(), warm) << "rep " << rep;
  }
  EXPECT_EQ(h.stats().scratch_grows, 1u);  // only the cold build
}

TEST(BuilderGalerkin, AmgRebuildMatchesFreshBuildThroughTheVcycle) {
  const graph::CrsMatrix a = graph::laplace2d(18, 18);
  graph::CrsMatrix a2 = a;
  for (scalar_t& v : a2.values) v *= 2.0;

  solver::AmgOptions opts;
  opts.coarse_size = 30;
  solver::AmgHierarchy warm = solver::AmgHierarchy::build(a, opts);
  warm.rebuild(a2);
  const solver::AmgHierarchy cold = solver::AmgHierarchy::build(a2, opts);

  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 7);
  std::vector<scalar_t> x_warm(static_cast<std::size_t>(a.num_rows), 0), x_cold = x_warm;
  warm.vcycle(b, x_warm);
  cold.vcycle(b, x_cold);
  EXPECT_EQ(x_warm, x_cold);
}

TEST(Builder, ComplexityCapStopsDensifyingHierarchy) {
  // The AMG+HEM power-law regression (the PR 4 ROADMAP follow-up):
  // pairwise matching coarsens slowly and the smoothed Galerkin operators
  // densify, so an uncapped build blows past any reasonable complexity.
  // The Builder must stop at the cap instead.
  const graph::CrsGraph g = graph::power_law_graph(4000, 2.2, 4, 400, 42);
  const graph::CrsMatrix a = graph::laplacian_matrix(g, 1.0);

  solver::AmgOptions opts;
  opts.coarsener = "hem";
  const solver::AmgHierarchy h = solver::AmgHierarchy::build(a, opts);
  EXPECT_LE(h.operator_complexity(), opts.operator_complexity_cap);
  EXPECT_EQ(h.hierarchy_stats().stop, StopReason::ComplexityCapped);

  // The capped hierarchy still acts as a (weaker) preconditioner: one
  // V-cycle must be finite and reduce nothing to NaN.
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 3);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  h.vcycle(b, x);
  for (scalar_t v : x) ASSERT_TRUE(std::isfinite(v));
}

TEST(Builder, ComplexityCapHonoredForEveryRegisteredCoarsener) {
  const graph::CrsGraph g = graph::power_law_graph(3000, 2.3, 3, 300, 11);
  const graph::CrsMatrix a = graph::laplacian_matrix(g, 1.0);
  for (const core::CoarsenerSpec& spec : core::coarsener_registry()) {
    solver::AmgOptions opts;
    opts.coarsener = spec.name;
    opts.coarse_size = 200;
    const solver::AmgHierarchy h = solver::AmgHierarchy::build(a, opts);
    EXPECT_LE(h.operator_complexity(), opts.operator_complexity_cap) << spec.name;
    EXPECT_GE(h.num_levels(), 1) << spec.name;
  }
}

}  // namespace
}  // namespace parmis::multilevel
