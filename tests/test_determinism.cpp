/// \file test_determinism.cpp
/// \brief End-to-end determinism sweep: the paper's headline property,
/// asserted bit-for-bit across backends and thread counts for every
/// deterministic component.

#include <gtest/gtest.h>

#include <vector>

#include "check/digest.hpp"
#include "coloring/d1_coloring.hpp"
#include "coloring/d2_coloring.hpp"
#include "core/aggregation.hpp"
#include "core/bell_misk.hpp"
#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "core/luby_mis1.hpp"
#include "core/mis2.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "multilevel/builder.hpp"
#include "parallel/context.hpp"
#include "parallel/execution.hpp"
#include "partition/interface.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/handle.hpp"
#include "solver/interface.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

/// Thread configurations swept by every test here.
std::vector<std::pair<par::Backend, int>> configs() {
  std::vector<std::pair<par::Backend, int>> c;
  c.emplace_back(par::Backend::Serial, 1);
#ifdef PARMIS_HAVE_OPENMP
  c.emplace_back(par::Backend::OpenMP, 1);
  c.emplace_back(par::Backend::OpenMP, 3);
  c.emplace_back(par::Backend::OpenMP, 8);
  c.emplace_back(par::Backend::OpenMP, 0);  // all hardware threads
#endif
  return c;
}

/// Run `f()` under every config and require identical results.
template <typename F>
void expect_invariant(F&& f) {
  using result_t = decltype(f());
  bool first = true;
  result_t reference{};
  for (const auto& [backend, threads] : configs()) {
    par::ScopedExecution scope(backend, threads);
    result_t r = f();
    if (first) {
      reference = std::move(r);
      first = false;
    } else {
      EXPECT_EQ(reference, r) << "backend=" << static_cast<int>(backend)
                              << " threads=" << threads;
    }
  }
}

const graph::CrsGraph& mesh_graph() {
  static const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(14, 14, 14));
  return g;
}

const graph::CrsGraph& rgg_graph() {
  static const graph::CrsGraph g = graph::random_geometric_3d(6000, 18.0, 2024);
  return g;
}

TEST(Determinism, Mis2Members) {
  expect_invariant([] { return core::mis2(mesh_graph()).members; });
  expect_invariant([] { return core::mis2(rgg_graph()).members; });
}

TEST(Determinism, Mis2Iterations) {
  expect_invariant([] { return core::mis2(rgg_graph()).iterations; });
}

TEST(Determinism, BellMisk) {
  expect_invariant([] { return core::bell_misk(rgg_graph(), 2).members; });
}

TEST(Determinism, LubyMis1) {
  expect_invariant([] { return core::luby_mis1(rgg_graph()).members; });
}

TEST(Determinism, AggregationLabels) {
  expect_invariant([] { return core::aggregate_mis2(mesh_graph()).labels; });
  expect_invariant([] { return core::aggregate_basic(rgg_graph()).labels; });
}

TEST(Determinism, CoarseGraphStructure) {
  expect_invariant([] {
    const core::Aggregation agg = core::aggregate_mis2(mesh_graph());
    const graph::CrsGraph c = core::coarse_graph(mesh_graph(), agg);
    return std::make_pair(c.row_map, c.entries);
  });
}

TEST(Determinism, D1D2Colorings) {
  expect_invariant([] { return coloring::parallel_d1_coloring(rgg_graph()).colors; });
  expect_invariant([] { return coloring::parallel_d2_coloring(mesh_graph()).colors; });
}

TEST(Determinism, SurrogateBuilders) {
  expect_invariant([] {
    const graph::CrsMatrix m = graph::find_matrix("Geo_1438").build(0.005);
    return std::make_pair(m.row_map, m.entries);
  });
}

TEST(Determinism, AmgIterationCounts) {
  expect_invariant([] {
    const graph::CrsMatrix a = graph::laplace3d(10, 10, 10);
    solver::AmgOptions opts;
    opts.scheme = solver::AggregationScheme::Mis2Agg;
    const solver::AmgHierarchy h = solver::AmgHierarchy::build(a, opts);
    const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 5);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    solver::IterOptions cg_opts;
    cg_opts.tolerance = 1e-10;
    cg_opts.max_iterations = 200;
    return solver::cg(a, b, x, cg_opts, &h).iterations;
  });
}

/// Backend × thread-count × schedule contexts swept by the schedule tests.
/// Dynamic is deliberately absent: it is the documented opt-out from the
/// determinism contract (see par::Schedule).
std::vector<Context> schedule_contexts() {
  std::vector<Context> ctxs;
  for (const par::Schedule s : {par::Schedule::Static, par::Schedule::EdgeBalanced}) {
    for (const auto& [backend, threads] : configs()) {
      Context ctx;
      ctx.backend = backend;
      ctx.num_threads = threads;
      ctx.schedule = s;
      ctxs.push_back(ctx);
    }
  }
  return ctxs;
}

TEST(Determinism, SchedulesAcrossRegisteredCoarseners) {
  // Every registered coarsener must produce one bit-identical labeling
  // across Serial/OpenMP, any thread count, and the Static/EdgeBalanced
  // schedules — the schedule knob selects work placement, never results.
  const graph::CrsGraph& skew = [] {
    static const graph::CrsGraph g = graph::power_law_graph(4000, 2.2, 3, 400, 5);
    return g;
  }();
  for (const core::CoarsenerSpec& spec : core::coarsener_registry()) {
    // One 64-bit check::digest per configuration carries the bit-identity
    // evidence; hex digests in the failure message diff across machines.
    std::uint64_t reference = 0;
    bool first = true;
    for (const Context& ctx : schedule_contexts()) {
      core::CoarsenHandle handle(ctx);
      const std::unique_ptr<core::Coarsener> c = spec.make();
      const std::uint64_t d = check::digest(c->run(skew, {}, handle).labels);
      if (first) {
        reference = d;
        first = false;
      } else {
        EXPECT_EQ(check::digest_hex(d), check::digest_hex(reference))
            << spec.name << " schedule=" << static_cast<int>(ctx.schedule)
            << " backend=" << static_cast<int>(ctx.backend) << " threads=" << ctx.num_threads;
      }
    }
  }
}

TEST(Determinism, SchedulesAcrossRegisteredPartitioners) {
  const partition::WeightedGraph wg =
      partition::WeightedGraph::unit(graph::power_law_graph(2500, 2.3, 3, 250, 17));
  const ordinal_t k = 4;
  for (const partition::PartitionerSpec& spec : partition::partitioner_registry()) {
    std::uint64_t reference = 0;
    bool first = true;
    for (const Context& ctx : schedule_contexts()) {
      Context::Scope scope(ctx);
      const std::uint64_t d = check::digest(spec.make()->run(wg, k).part);
      if (first) {
        reference = d;
        first = false;
      } else {
        EXPECT_EQ(check::digest_hex(d), check::digest_hex(reference))
            << spec.name << " schedule=" << static_cast<int>(ctx.schedule)
            << " backend=" << static_cast<int>(ctx.backend) << " threads=" << ctx.num_threads;
      }
    }
  }
}

TEST(Determinism, SchedulesAcrossBuilderHierarchies) {
  // Builder hierarchies — all three contraction modes — must be
  // bit-identical across Serial/OpenMP, any thread count, and the
  // Static/EdgeBalanced schedules, for every registered coarsener.
  const graph::CrsGraph skew = graph::power_law_graph(3000, 2.3, 3, 300, 23);
  const multilevel::WeightedGraph wskew = multilevel::WeightedGraph::unit(skew);
  const graph::CrsMatrix a = graph::laplacian_matrix(skew, 1.0);
  for (const core::CoarsenerSpec& spec : core::coarsener_registry()) {
    std::uint64_t ref_labels = 0;
    std::uint64_t ref_wlabels = 0;
    std::uint64_t ref_values = 0;
    bool first = true;
    for (const Context& ctx : schedule_contexts()) {
      multilevel::Options mo;
      mo.coarsener = spec.name;
      mo.min_coarse_size = 100;
      mo.complexity_cap = 10.0;
      mo.ctx = ctx;
      const multilevel::Builder builder(mo);
      multilevel::HierarchyHandle h;

      // Per-level digests folded order-sensitively into one word per mode;
      // the levels can't reorder without changing the fold.
      std::uint64_t labels = check::kFnvBasis;
      for (const multilevel::Step& s : builder.build(skew, h)) {
        labels = check::digest_combine(labels, check::digest(s.aggregation.labels));
      }
      std::uint64_t wlabels = check::kFnvBasis;
      for (const multilevel::Step& s : builder.build_weighted(wskew, h)) {
        wlabels = check::digest_combine(wlabels, check::digest(s.aggregation.labels));
      }
      std::uint64_t values = check::kFnvBasis;
      for (const multilevel::OperatorLevel& l : builder.build_galerkin(a, h)) {
        values = check::digest_combine(values, check::digest(l.a.values));
      }
      if (first) {
        ref_labels = labels;
        ref_wlabels = wlabels;
        ref_values = values;
        first = false;
      } else {
        EXPECT_EQ(check::digest_hex(labels), check::digest_hex(ref_labels))
            << spec.name << " topology schedule=" << static_cast<int>(ctx.schedule)
            << " backend=" << static_cast<int>(ctx.backend) << " threads=" << ctx.num_threads;
        EXPECT_EQ(check::digest_hex(wlabels), check::digest_hex(ref_wlabels))
            << spec.name << " weighted";
        EXPECT_EQ(check::digest_hex(values), check::digest_hex(ref_values))
            << spec.name << " galerkin";
      }
    }
  }
}

TEST(Determinism, SchedulesAcrossSolverStack) {
  // Every registered solver × preconditioner pair must produce one
  // bit-identical solution vector and iteration count across
  // Serial/OpenMP, any thread count, and the Static/EdgeBalanced
  // schedules — the solver-stack extension of the paper's headline
  // property (Krylov reductions are fixed-order, aggregation/coloring
  // setup is deterministic, so the whole stack is).
  const graph::CrsMatrix a =
      graph::laplacian_matrix(test::adjacency_of(graph::laplace3d(8, 8, 8)), 1.0);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 33);
  solver::IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 200;

  for (const solver::SolverSpec& sspec : solver::solver_registry()) {
    for (const solver::PreconditionerSpec& pspec : solver::preconditioner_registry()) {
      std::uint64_t reference = 0;
      int reference_iters = 0;
      bool first = true;
      for (const Context& ctx : schedule_contexts()) {
        solver::SolveHandle handle(sspec.name, pspec.name, ctx);
        handle.prec_options().amg.coarse_size = 200;
        std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
        const solver::IterResult& r = handle.solve(a, b, x, opts);
        const std::uint64_t d = check::digest(x);
        if (first) {
          reference = d;
          reference_iters = r.iterations;
          first = false;
        } else {
          EXPECT_EQ(check::digest_hex(d), check::digest_hex(reference))
              << sspec.name << "+" << pspec.name << " schedule=" << static_cast<int>(ctx.schedule)
              << " backend=" << static_cast<int>(ctx.backend) << " threads=" << ctx.num_threads;
          EXPECT_EQ(r.iterations, reference_iters) << sspec.name << "+" << pspec.name;
        }
      }
    }
  }
}

TEST(Determinism, RepeatedRunsIdenticalWithinConfig) {
  // Same-config repeatability (paper: "identical result ... across several
  // runs in the same architecture").
  par::ScopedExecution scope(par::Backend::OpenMP, 0);
  const auto a = core::mis2(rgg_graph());
  for (int rep = 0; rep < 5; ++rep) {
    const auto b = core::mis2(rgg_graph());
    EXPECT_EQ(a.members, b.members);
    EXPECT_EQ(a.iterations, b.iterations);
  }
}

}  // namespace
}  // namespace parmis
