/// \file test_integration.cpp
/// \brief Cross-module integration tests: full pipelines exercising the
/// public API the way the examples and benchmarks do.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "coloring/d1_coloring.hpp"
#include "coloring/verify.hpp"
#include "core/aggregation.hpp"
#include "core/coarsen.hpp"
#include "core/mis2.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "partition/partitioner.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/cluster_gs.hpp"
#include "solver/gmres.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

TEST(Pipeline, MatrixMarketToMis2ToAggregation) {
  // Write a problem to disk, read it back, run the full coarsening
  // pipeline — the workflow of a user starting from a SuiteSparse file.
  const std::string path = std::filesystem::temp_directory_path() / "parmis_pipeline.mtx";
  graph::write_matrix_market(path, graph::laplace2d(40, 40));
  const graph::CrsMatrix a = graph::read_matrix_market(path);
  std::remove(path.c_str());

  const graph::CrsGraph g = graph::remove_self_loops(graph::GraphView(a));
  const core::Mis2Result mis = core::mis2(g);
  EXPECT_TRUE(core::verify_mis2(g, mis.in_set));

  const core::Aggregation agg = core::aggregate_mis2(g);
  EXPECT_TRUE(core::verify_aggregation(g, agg));

  const graph::CrsGraph coarse = core::coarse_graph(g, agg);
  EXPECT_TRUE(coarse.validate());
  EXPECT_LT(coarse.num_rows, g.num_rows / 3);
}

TEST(Pipeline, RegistrySurrogateThroughFullSolverStack) {
  // A Table II surrogate end to end: build, precondition with AMG, solve.
  const graph::CrsMatrix a = graph::find_matrix("StocF-1465").build(0.01);
  solver::AmgOptions amg_opts;
  const solver::AmgHierarchy amg = solver::AmgHierarchy::build(a, amg_opts);

  const graph::CrsMatrix& a0 = amg.level(0).a;
  const std::vector<scalar_t> b = solver::random_vector(a0.num_rows, 31);
  std::vector<scalar_t> x(static_cast<std::size_t>(a0.num_rows), 0);
  solver::IterOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 300;
  const solver::IterResult r = solver::cg(a0, b, x, opts, &amg);
  EXPECT_TRUE(r.converged);
}

TEST(Pipeline, ClusterGsUsesAggregationConsistently) {
  // The cluster structure inside the preconditioner must itself be a valid
  // aggregation whose quotient coloring is a valid D1 coloring.
  const graph::CrsMatrix a = graph::elasticity3d(6, 6, 6);
  solver::ClusterMulticolorGS gs(a);
  const graph::CrsGraph adj = graph::remove_self_loops(graph::GraphView(a));
  EXPECT_TRUE(core::verify_aggregation(adj, gs.aggregation()));

  const graph::CrsGraph coarse = core::coarse_graph(adj, gs.aggregation());
  const coloring::Coloring coarse_coloring = coloring::parallel_d1_coloring(coarse);
  EXPECT_TRUE(coloring::verify_d1_coloring(coarse, coarse_coloring));
  EXPECT_EQ(coarse_coloring.num_colors, gs.num_colors());
}

TEST(Pipeline, PartitionOfCoarsenedGraphMatchesDirectPartition) {
  // Partitioning via the multilevel driver must produce cuts comparable to
  // partitioning the fine graph directly (coarse-then-partition-then-
  // project is what the multilevel partitioner does internally anyway).
  const graph::CrsGraph g = graph::random_geometric_2d(3000, 7.0, 41);
  const partition::Partition direct = partition::partition_graph(g, 4);

  core::MultilevelOptions ml;
  ml.target_vertices = 400;
  const core::MultilevelHierarchy h = core::multilevel_coarsen(g, ml);
  ASSERT_FALSE(h.levels.empty());
  const partition::Partition coarse_part =
      partition::partition_graph(h.levels.back().graph, 4);
  std::vector<ordinal_t> projected(static_cast<std::size_t>(g.num_rows));
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    projected[static_cast<std::size_t>(v)] =
        coarse_part.part[static_cast<std::size_t>(h.project(v))];
  }
  const std::int64_t projected_cut = partition::edge_cut(g, projected);
  // Projection without refinement loses some quality but must stay within
  // a small factor.
  EXPECT_LT(static_cast<double>(direct.edge_cut), 1.2 * static_cast<double>(projected_cut) + 50);
}

TEST(Pipeline, Mis2OptionsSeedGivesIndependentSolves) {
  // Different seeds give different (valid) hierarchies; each must still
  // converge — the reproducibility knob users get.
  const graph::CrsMatrix a = graph::laplace3d(8, 8, 8);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 33);
  for (std::uint64_t seed : {0ull, 1ull, 2ull}) {
    solver::AmgOptions opts;
    opts.mis2.seed = seed;
    const solver::AmgHierarchy amg = solver::AmgHierarchy::build(a, opts);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    solver::IterOptions cg_opts;
    cg_opts.tolerance = 1e-10;
    cg_opts.max_iterations = 200;
    EXPECT_TRUE(solver::cg(a, b, x, cg_opts, &amg).converged) << "seed " << seed;
  }
}

TEST(Pipeline, SymmetrizeArbitraryMatrixBeforeGraphAlgorithms) {
  // Nonsymmetric input must be usable after one symmetrize call (the CLI
  // tool's path).
  std::vector<graph::Triplet> t;
  rng::SplitMix64 gen(77);
  const ordinal_t n = 200;
  for (int e = 0; e < 900; ++e) {
    t.push_back({static_cast<ordinal_t>(gen.next_below(n)),
                 static_cast<ordinal_t>(gen.next_below(n)), 1.0});
  }
  const graph::CrsMatrix a = graph::matrix_from_coo(n, n, t);
  const graph::CrsGraph g = graph::remove_self_loops(graph::symmetrize(graph::GraphView(a)));
  ASSERT_TRUE(graph::is_symmetric(g));
  ASSERT_FALSE(graph::has_self_loops(g));
  const core::Mis2Result mis = core::mis2(g);
  EXPECT_TRUE(core::verify_mis2(g, mis.in_set));
  const core::Aggregation agg = core::aggregate_mis2(g);
  EXPECT_TRUE(core::verify_aggregation(g, agg));
}

TEST(Pipeline, GmresWithAmgPreconditioner) {
  // AMG is also usable under GMRES (not just CG).
  const graph::CrsMatrix a = graph::laplace2d(30, 30);
  const solver::AmgHierarchy amg = solver::AmgHierarchy::build(a, {});
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 35);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  solver::IterOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 200;
  const solver::IterResult r = solver::gmres(a, b, x, opts, &amg);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 40);
}

}  // namespace
}  // namespace parmis
