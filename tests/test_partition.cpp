/// \file test_partition.cpp
/// \brief Tests for the multilevel partitioning subsystem: traversal
/// utilities, weighted coarsening, HEM, bisection/refinement, k-way.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "graph/traversal.hpp"
#include "parallel/execution.hpp"
#include "partition/coarsen_weighted.hpp"
#include "partition/partitioner.hpp"
#include "test_utils.hpp"

namespace parmis::partition {
namespace {

TEST(Traversal, BfsDistancesOnPath) {
  const graph::CrsGraph g = test::path_graph(6);
  const std::vector<ordinal_t> d = graph::bfs_distances(g, 0);
  for (ordinal_t v = 0; v < 6; ++v) {
    EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
  }
}

TEST(Traversal, BfsUnreachableIsMinusOne) {
  const graph::CrsGraph g = graph::graph_from_edges(4, {{0, 1}});
  const std::vector<ordinal_t> d = graph::bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], invalid_ordinal);
  EXPECT_EQ(d[3], invalid_ordinal);
}

TEST(Traversal, PseudoPeripheralOnPathIsAnEnd) {
  const graph::CrsGraph g = test::path_graph(30);
  const ordinal_t v = graph::pseudo_peripheral_vertex(g, 15);
  EXPECT_TRUE(v == 0 || v == 29);
}

TEST(Traversal, ConnectedComponents) {
  const graph::CrsGraph g = graph::graph_from_edges(7, {{0, 1}, {1, 2}, {3, 4}});
  const graph::Components c = graph::connected_components(g);
  EXPECT_EQ(c.count, 4);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(c.labels[0], c.labels[2]);
  EXPECT_NE(c.labels[0], c.labels[3]);
  EXPECT_NE(c.labels[5], c.labels[6]);
}

TEST(Traversal, SingleComponentOnMesh) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(10, 10));
  EXPECT_EQ(graph::connected_components(g).count, 1);
}

TEST(WeightedCoarsen, WeightsAreConserved) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(12, 12));
  WeightedGraph wg = WeightedGraph::unit(g);
  const core::Aggregation agg = core::aggregate_mis2(g);
  const WeightedGraph coarse = coarsen_weighted(wg, agg.labels, agg.num_aggregates);

  // Vertex weight conserved.
  EXPECT_EQ(coarse.total_vertex_weight(), wg.total_vertex_weight());
  // Edge weight: every fine edge is either internal or contributes to
  // exactly one coarse edge (counted from both sides).
  std::int64_t fine_cross = 0;
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    for (ordinal_t u : g.row(v)) {
      if (agg.labels[static_cast<std::size_t>(u)] != agg.labels[static_cast<std::size_t>(v)]) {
        ++fine_cross;
      }
    }
  }
  std::int64_t coarse_total = 0;
  for (ordinal_t w : coarse.edge_weight) coarse_total += w;
  EXPECT_EQ(coarse_total, fine_cross);
  EXPECT_TRUE(coarse.graph.validate());
}

TEST(WeightedCoarsen, CutIsPreservedUnderProjection) {
  // The invariant multilevel partitioning rests on: a coarse bisection's
  // weighted cut equals the projected fine cut.
  const graph::CrsGraph g = graph::random_geometric_2d(2000, 6.0, 3);
  WeightedGraph wg = WeightedGraph::unit(g);
  const core::Aggregation agg = core::aggregate_mis2(g);
  const WeightedGraph coarse = coarsen_weighted(wg, agg.labels, agg.num_aggregates);

  // Arbitrary coarse split by parity.
  std::vector<char> coarse_side(static_cast<std::size_t>(coarse.graph.num_rows));
  for (ordinal_t a = 0; a < coarse.graph.num_rows; ++a) {
    coarse_side[static_cast<std::size_t>(a)] = a % 2;
  }
  std::vector<char> fine_side(static_cast<std::size_t>(g.num_rows));
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    fine_side[static_cast<std::size_t>(v)] =
        coarse_side[static_cast<std::size_t>(agg.labels[static_cast<std::size_t>(v)])];
  }
  EXPECT_EQ(cut_weight(coarse, coarse_side), cut_weight(wg, fine_side));
}

TEST(Hem, MatchesArePairsOrSingletons) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(15, 15));
  WeightedGraph wg = WeightedGraph::unit(g);
  const Matching m = heavy_edge_matching(wg, 7);
  std::vector<ordinal_t> size(static_cast<std::size_t>(m.num_coarse), 0);
  for (ordinal_t l : m.labels) ++size[static_cast<std::size_t>(l)];
  for (ordinal_t s : size) {
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 2);
  }
  // A mesh has a near-perfect matching: expect close to n/2 coarse nodes.
  EXPECT_LT(m.num_coarse, static_cast<ordinal_t>(0.65 * g.num_rows));
}

TEST(Hem, PrefersHeavyEdges) {
  // Triangle with one heavy edge: the heavy pair must be matched.
  graph::CrsGraph g = graph::graph_from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  WeightedGraph wg = WeightedGraph::unit(g);
  // Make edge (1,2) heavy in both directions.
  for (ordinal_t v = 0; v < 3; ++v) {
    for (offset_t j = wg.graph.row_map[v]; j < wg.graph.row_map[v + 1]; ++j) {
      const ordinal_t u = wg.graph.entries[static_cast<std::size_t>(j)];
      if ((v == 1 && u == 2) || (v == 2 && u == 1)) {
        wg.edge_weight[static_cast<std::size_t>(j)] = 10;
      }
    }
  }
  const Matching m = heavy_edge_matching(wg, 1);
  EXPECT_EQ(m.labels[1], m.labels[2]);
  EXPECT_NE(m.labels[0], m.labels[1]);
}

TEST(Bisection, GrowCoversHalfTheWeight) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(20, 20));
  WeightedGraph wg = WeightedGraph::unit(g);
  const Bisection b = grow_bisection(wg, 5);
  std::int64_t w0 = 0;
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    if (b.side[static_cast<std::size_t>(v)] == 0) ++w0;
  }
  EXPECT_NEAR(static_cast<double>(w0), g.num_rows / 2.0, g.num_rows * 0.02 + 2);
  EXPECT_EQ(b.cut_weight, cut_weight(wg, b.side));
}

TEST(Bisection, RefinementNeverWorsensCut) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const graph::CrsGraph g = graph::random_geometric_2d(1500, 7.0, seed);
    WeightedGraph wg = WeightedGraph::unit(g);
    Bisection b = grow_bisection(wg, seed);
    const std::int64_t before = b.cut_weight;
    refine_bisection(wg, b, 8, 0.05);
    EXPECT_LE(b.cut_weight, before) << "seed " << seed;
    EXPECT_EQ(b.cut_weight, cut_weight(wg, b.side)) << "seed " << seed;
  }
}

TEST(Multilevel, BisectionOfGridIsNearOptimal) {
  // A 32x32 grid's optimal bisection cut is 32; multilevel + refinement
  // should land within a 2x band.
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(32, 32));
  WeightedGraph wg = WeightedGraph::unit(g);
  PartitionOptions opts;
  const Bisection b = multilevel_bisect(wg, opts);
  EXPECT_LE(b.cut_weight, 64);
  // Balance within tolerance band.
  std::int64_t w0 = 0;
  for (char s : b.side) w0 += s == 0;
  EXPECT_NEAR(static_cast<double>(w0), 512.0, 80.0);
}

class KwayPartition : public ::testing::TestWithParam<ordinal_t> {};

TEST_P(KwayPartition, ValidBalancedPartitions) {
  const ordinal_t k = GetParam();
  const graph::CrsGraph g = graph::random_geometric_3d(4000, 12.0, 17);
  const Partition p = partition_graph(g, k);
  ASSERT_EQ(p.part.size(), static_cast<std::size_t>(g.num_rows));
  for (ordinal_t part_id : p.part) {
    EXPECT_GE(part_id, 0);
    EXPECT_LT(part_id, k);
  }
  // Every part non-empty and within ~20% imbalance for these sizes.
  std::vector<std::int64_t> count(static_cast<std::size_t>(k), 0);
  for (ordinal_t part_id : p.part) ++count[static_cast<std::size_t>(part_id)];
  for (ordinal_t part_id = 0; part_id < k; ++part_id) {
    EXPECT_GT(count[static_cast<std::size_t>(part_id)], 0) << "empty part " << part_id;
  }
  EXPECT_LT(p.imbalance, 0.25) << "k=" << k;
  EXPECT_EQ(p.edge_cut, edge_cut(g, p.part));
}

INSTANTIATE_TEST_SUITE_P(Ks, KwayPartition, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(KwayQuality, CutFarBelowRandomAssignment) {
  const graph::CrsGraph g = graph::random_geometric_2d(5000, 8.0, 23);
  const ordinal_t k = 8;
  const Partition p = partition_graph(g, k);

  // Random assignment cuts ~ (1 - 1/k) of all edges.
  const double random_cut = static_cast<double>(g.num_entries() / 2) * (1.0 - 1.0 / k);
  EXPECT_LT(static_cast<double>(p.edge_cut), 0.35 * random_cut);
}

TEST(KwayQuality, Mis2CoarseningCompetitiveWithHem) {
  // Gilbert et al. (paper §II): MIS-2 coarsening outperforms HEM on
  // regular graphs. Require MIS-2 to be at least within 1.5x of HEM here
  // (the ablation bench reports the actual ratios).
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(60, 60));
  PartitionOptions mis2_opts;
  mis2_opts.coarsening = CoarseningScheme::Mis2Aggregation;
  PartitionOptions hem_opts;
  hem_opts.coarsening = CoarseningScheme::HeavyEdgeMatching;
  const Partition pm = partition_graph(g, 4, mis2_opts);
  const Partition ph = partition_graph(g, 4, hem_opts);
  EXPECT_LT(static_cast<double>(pm.edge_cut), 1.5 * static_cast<double>(ph.edge_cut) + 16);
}

TEST(Partition, DeterministicAcrossThreads) {
  const graph::CrsGraph g = graph::random_geometric_3d(3000, 10.0, 29);
  Partition serial_p, parallel_p;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_p = partition_graph(g, 4);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_p = partition_graph(g, 4);
  }
  EXPECT_EQ(serial_p.part, parallel_p.part);
  EXPECT_EQ(serial_p.edge_cut, parallel_p.edge_cut);
}

TEST(Partition, HandlesDisconnectedGraphs) {
  // Two separate meshes: the bisection should use the component split.
  std::vector<graph::Edge> edges;
  const graph::CrsGraph grid = test::adjacency_of(graph::laplace2d(10, 10));
  for (ordinal_t v = 0; v < grid.num_rows; ++v) {
    for (ordinal_t u : grid.row(v)) {
      if (u > v) {
        edges.emplace_back(v, u);
        edges.emplace_back(v + grid.num_rows, u + grid.num_rows);
      }
    }
  }
  const graph::CrsGraph g = graph::graph_from_edges(2 * grid.num_rows, edges);
  const Partition p = partition_graph(g, 2);
  EXPECT_LE(p.edge_cut, 10);  // near-zero: the two components split apart
  EXPECT_LT(p.imbalance, 0.1);
}

TEST(Partition, EmptyAndTinyGraphs) {
  EXPECT_EQ(partition_graph(graph::CrsGraph{}, 4).part.size(), 0u);
  const graph::CrsGraph single = graph::graph_from_edges(1, {});
  const Partition p = partition_graph(single, 1);
  EXPECT_EQ(p.part[0], 0);
}

}  // namespace
}  // namespace parmis::partition
