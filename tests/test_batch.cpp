/// \file test_batch.cpp
/// \brief Batched multi-RHS solving tests: block-Krylov vs looped
/// bit-identity across backends and schedules, the zero-allocation warm
/// `solve_batch` contract, per-column fault/input isolation, and the
/// batched serving path including the async customize pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "check/alloc_guard.hpp"
#include "check/digest.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "parallel/context.hpp"
#include "resilience/fault.hpp"
#include "resilience/status.hpp"
#include "serve/pipeline.hpp"
#include "serve/replay.hpp"
#include "serve/service.hpp"
#include "solver/handle.hpp"
#include "solver/multivector.hpp"
#include "solver/options.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

solver::IterOptions tight_opts() {
  solver::IterOptions o;
  o.tolerance = 1e-8;
  o.max_iterations = 500;
  return o;
}

/// Per-column reference: K independent single-RHS solves through
/// `solver_name`, rhs seeds 1..K, x0 = 0. Returns (digest, iterations)
/// per column.
std::vector<std::pair<std::uint64_t, int>> looped_reference(const graph::CrsMatrix& a,
                                                            const std::string& solver_name,
                                                            const std::string& prec, int k,
                                                            const solver::IterOptions& opts) {
  solver::SolveHandle h(solver_name, prec);
  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  std::vector<scalar_t> b(un);
  std::vector<scalar_t> x(un);
  std::vector<std::pair<std::uint64_t, int>> out;
  for (int c = 0; c < k; ++c) {
    solver::random_fill(b, static_cast<std::uint64_t>(1 + c));
    solver::fill(x, 0.0);
    const solver::IterResult& r = h.solve(a, b, x, opts);
    EXPECT_TRUE(r.converged) << solver_name << " column " << c;
    out.emplace_back(check::digest(x), r.iterations);
  }
  return out;
}

/// The batched rhs multi-vector matching `looped_reference`'s seeds.
std::vector<scalar_t> batched_rhs(const graph::CrsMatrix& a, int k) {
  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  std::vector<scalar_t> bm(un * static_cast<std::size_t>(k));
  std::vector<scalar_t> col(un);
  for (int c = 0; c < k; ++c) {
    solver::random_fill(col, static_cast<std::uint64_t>(1 + c));
    solver::scatter_column(col, a.num_rows, k, c, bm);
  }
  return bm;
}

TEST(Batch, BlockCgMatchesLoopedAcrossBackendsAndSchedules) {
  // The tentpole contract: column c of a fused block-CG batch is
  // bit-identical to single-RHS CG on the same seed — same iteration
  // count, same solution bits — for every backend × schedule cell. The
  // matrix crosses reduce_chunk (17^3 = 4913 rows) so the chunked
  // reduction tree in mv_dot is exercised, not just the serial path.
  const graph::CrsMatrix a = graph::laplace3d(17, 17, 17);
  const int k = 4;
  const solver::IterOptions opts = tight_opts();
  const std::vector<std::pair<std::uint64_t, int>> ref =
      looped_reference(a, "cg", "jacobi", k, opts);

  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  const std::vector<scalar_t> bm = batched_rhs(a, k);
  std::vector<scalar_t> xm(un * k);
  std::vector<scalar_t> xc(un);

  for (const par::Schedule s : {par::Schedule::Static, par::Schedule::EdgeBalanced}) {
    for (const auto& [backend, threads] :
         std::vector<std::pair<par::Backend, int>>{{par::Backend::Serial, 1},
                                                   {par::Backend::OpenMP, 1},
                                                   {par::Backend::OpenMP, 3},
                                                   {par::Backend::OpenMP, 8}}) {
      solver::IterOptions o = opts;
      Context ctx;
      ctx.backend = backend;
      ctx.num_threads = threads;
      ctx.schedule = s;
      o.ctx = ctx;
      solver::SolveHandle h("block-cg", "jacobi");
      solver::fill(xm, 0.0);
      const solver::BatchResult& br = h.solve_batch(a, bm, xm, k, o);
      ASSERT_EQ(k, br.k);
      for (int c = 0; c < k; ++c) {
        const std::size_t uc = static_cast<std::size_t>(c);
        EXPECT_TRUE(br.results[uc].converged) << "col " << c;
        EXPECT_EQ(ref[uc].second, br.results[uc].iterations)
            << "col " << c << " backend=" << static_cast<int>(backend) << " threads=" << threads
            << " schedule=" << static_cast<int>(s);
        solver::gather_column(xm, a.num_rows, k, c, std::span<scalar_t>(xc));
        EXPECT_EQ(check::digest_hex(ref[uc].first), check::digest_hex(check::digest(xc)))
            << "col " << c << " backend=" << static_cast<int>(backend) << " threads=" << threads
            << " schedule=" << static_cast<int>(s);
      }
    }
  }
}

TEST(Batch, BlockGmresMatchesLooped) {
  const graph::CrsMatrix a = graph::laplace3d(8, 8, 8);
  const int k = 3;
  const solver::IterOptions opts = tight_opts();
  const std::vector<std::pair<std::uint64_t, int>> ref =
      looped_reference(a, "gmres", "jacobi", k, opts);

  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  solver::SolveHandle h("block-gmres", "jacobi");
  std::vector<scalar_t> xm(un * k, 0.0);
  const solver::BatchResult& br = h.solve_batch(a, batched_rhs(a, k), xm, k, opts);
  std::vector<scalar_t> xc(un);
  for (int c = 0; c < k; ++c) {
    const std::size_t uc = static_cast<std::size_t>(c);
    EXPECT_TRUE(br.results[uc].converged) << "col " << c;
    EXPECT_EQ(ref[uc].second, br.results[uc].iterations) << "col " << c;
    solver::gather_column(xm, a.num_rows, k, c, std::span<scalar_t>(xc));
    EXPECT_EQ(check::digest_hex(ref[uc].first), check::digest_hex(check::digest(xc)))
        << "col " << c;
  }
}

TEST(Batch, DefaultLoopedBatchMatchesSolve) {
  // Solvers without a fused core fall back to gather/solve/scatter per
  // column — trivially bit-identical to K separate solve() calls.
  const graph::CrsMatrix a = graph::laplace2d(14, 11);
  const int k = 3;
  const solver::IterOptions opts = tight_opts();
  const std::vector<std::pair<std::uint64_t, int>> ref =
      looped_reference(a, "cg", "jacobi", k, opts);

  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  solver::SolveHandle h("cg", "jacobi");
  std::vector<scalar_t> xm(un * k, 0.0);
  const solver::BatchResult& br = h.solve_batch(a, batched_rhs(a, k), xm, k, opts);
  std::vector<scalar_t> xc(un);
  for (int c = 0; c < k; ++c) {
    const std::size_t uc = static_cast<std::size_t>(c);
    EXPECT_EQ(ref[uc].second, br.results[uc].iterations) << "col " << c;
    solver::gather_column(xm, a.num_rows, k, c, std::span<scalar_t>(xc));
    EXPECT_EQ(ref[uc].first, check::digest(xc)) << "col " << c;
  }
}

TEST(Batch, WarmBatchedSolveIsAllocationFree) {
  // n = 1000 <= reduce_chunk so the fused reductions take the
  // no-partials path; after the cold solve sizes every pool, a warm
  // solve_batch must perform zero heap allocations (enforced by the
  // handle's own AllocGuard in check builds, and asserted directly here).
  const graph::CrsMatrix a = graph::laplace3d(10, 10, 10);
  const int k = 4;
  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  const std::vector<scalar_t> bm = batched_rhs(a, k);
  std::vector<scalar_t> xm(un * k);
  const solver::IterOptions opts = tight_opts();

  for (const char* sname : {"block-cg", "block-gmres"}) {
    solver::SolveHandle h(sname, "jacobi");
    solver::fill(xm, 0.0);
    const solver::BatchResult& cold = h.solve_batch(a, bm, xm, k, opts);
    EXPECT_TRUE(cold.all_converged()) << sname;
    const std::uint64_t digest0 = check::digest(xm);

    solver::fill(xm, 0.0);
    check::AllocGuard guard;
    (void)h.solve_batch(a, bm, xm, k, opts);
    if (check::counting_available()) {
      EXPECT_EQ(0u, guard.allocations()) << sname << ": warm batched solve allocated";
    }
    EXPECT_EQ(digest0, check::digest(xm)) << sname << ": warm rerun changed bits";
  }
}

TEST(Batch, NonFiniteColumnIsExcludedAndIsolated) {
  // A NaN in one column's rhs must not leak into its batchmates: the
  // column is excluded up front with NonFiniteInput, its x lanes stay
  // untouched, and the other columns converge to exactly the bits they
  // produce in a clean batch.
  const graph::CrsMatrix a = graph::laplace2d(12, 12);
  const int k = 3;
  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  const solver::IterOptions opts = tight_opts();
  const std::vector<std::pair<std::uint64_t, int>> ref =
      looped_reference(a, "cg", "jacobi", k, opts);

  std::vector<scalar_t> bm = batched_rhs(a, k);
  bm[5 * k + 1] = std::numeric_limits<scalar_t>::quiet_NaN();  // poison column 1
  solver::SolveHandle h("block-cg", "jacobi");
  std::vector<scalar_t> xm(un * k, 0.0);
  const solver::BatchResult& br = h.solve_batch(a, bm, xm, k, opts);

  EXPECT_EQ(resilience::SolveStatus::NonFiniteInput, br.results[1].status);
  EXPECT_FALSE(br.results[1].converged);
  EXPECT_NE(0, br.excluded[1]);
  EXPECT_FALSE(br.all_converged());
  EXPECT_EQ(2, br.converged_count());

  std::vector<scalar_t> xc(un);
  for (const int c : {0, 2}) {
    const std::size_t uc = static_cast<std::size_t>(c);
    EXPECT_TRUE(br.results[uc].converged) << "col " << c;
    solver::gather_column(xm, a.num_rows, k, c, std::span<scalar_t>(xc));
    EXPECT_EQ(ref[uc].first, check::digest(xc)) << "col " << c;
  }
  // The excluded column's lanes were never written: still exactly x0 = 0.
  solver::gather_column(xm, a.num_rows, k, 1, std::span<scalar_t>(xc));
  for (std::size_t i = 0; i < un; ++i) {
    ASSERT_EQ(0.0, xc[i]) << "excluded lane written at row " << i;
  }
}

#if PARMIS_FAULT_ENABLED
TEST(Batch, FaultPoisonsOnlyItsColumn) {
  // The injected CG breakdown hits column 0's recurrence; its batchmates
  // must converge with their own clean statuses — per-RHS taxonomy, not
  // batch-wide failure.
  const graph::CrsMatrix a = graph::laplace2d(10, 10);
  const int k = 3;
  const std::size_t un = static_cast<std::size_t>(a.num_rows);
  solver::SolveHandle h("block-cg", "jacobi");
  std::vector<scalar_t> xm(un * k, 0.0);
  resilience::arm_faults_spec("cg.pap");
  const solver::BatchResult& br = h.solve_batch(a, batched_rhs(a, k), xm, k, tight_opts());
  resilience::disarm_faults();

  EXPECT_EQ(resilience::SolveStatus::Breakdown, br.results[0].status);
  EXPECT_FALSE(br.results[0].converged);
  for (const int c : {1, 2}) {
    EXPECT_EQ(resilience::SolveStatus::Converged, br.results[static_cast<std::size_t>(c)].status)
        << "col " << c;
  }
}
#endif

// ------------------------------------------------------------- serving

serve::Service::Options block_service_options() {
  serve::Service::Options o;
  o.pool.solver = "block-cg";
  o.pool.prec = "jacobi";
  o.pool.size = 2;
  return o;
}

TEST(Batch, ServiceSolveBatchMatchesSolve) {
  // A batched wave through the service must produce, per request, the
  // identical outcome the one-at-a-time path produces: same digest, same
  // iteration count, same epoch.
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::size_t nreq = 10;

  serve::Service looped(block_service_options(), a);
  const std::vector<serve::ServeRequest> reqs =
      serve::make_requests(nreq, 7, looped.epoch(), 0);
  std::vector<serve::RequestOutcome> ref;
  for (const serve::ServeRequest& r : reqs) ref.push_back(looped.solve(r));

  serve::Service batched(block_service_options(), a);
  const std::vector<serve::RequestOutcome> got = batched.solve_batch(reqs, 4);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].id, got[i].id);
    EXPECT_EQ(ref[i].epoch, got[i].epoch);
    EXPECT_EQ(ref[i].converged, got[i].converged) << "request " << i;
    EXPECT_EQ(ref[i].iterations, got[i].iterations) << "request " << i;
    EXPECT_EQ(check::digest_hex(ref[i].solution_digest),
              check::digest_hex(got[i].solution_digest))
        << "request " << i;
  }
}

TEST(Batch, PipelinePredictsEpochsAndRecoversFailures) {
  const graph::CrsMatrix a = graph::laplace2d(12, 12);
  serve::Service service(block_service_options(), a);
  const std::uint64_t epoch0 = service.epoch();

  serve::CustomizePipeline pipeline(service);
  std::vector<scalar_t> values(service.current()->a->values);
  for (scalar_t& v : values) v *= 1.5;
  const std::uint64_t e1 = pipeline.submit(values);
  EXPECT_EQ(epoch0 + 1, e1);
  pipeline.drain();
  EXPECT_EQ(e1, service.epoch());
  EXPECT_TRUE(pipeline.failures().empty());

  // A submission whose replay throws must still publish its predicted
  // epoch (via republish) so consumers pinned to it never block.
  const std::vector<scalar_t> bad(3, 1.0);  // wrong length -> customize throws
  const std::uint64_t e2 = pipeline.submit(bad);
  EXPECT_EQ(epoch0 + 2, e2);
  pipeline.drain();
  EXPECT_EQ(e2, service.epoch());
  const std::vector<serve::CustomizePipeline::Failure> failures = pipeline.failures();
  ASSERT_EQ(1u, failures.size());
  EXPECT_EQ(e2, failures[0].epoch);
  EXPECT_FALSE(failures[0].what.empty());
}

TEST(Batch, BatchedReplayDeterministicAcrossSwap) {
  // The end-to-end epoch-determinism check: a threaded batched replay
  // with a live async customize swap must reproduce the serial unbatched
  // replay's combined digest bit for bit.
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::size_t nreq = 16;
  const std::size_t customize_at = 8;

  std::uint64_t reference = 0;
  {
    serve::Service service(block_service_options(), a);
    const std::vector<serve::ServeRequest> reqs =
        serve::make_requests(nreq, 1, service.epoch(), customize_at);
    serve::ReplayOptions ropts;
    ropts.threads = 1;
    ropts.customize_at = customize_at;
    const serve::ReplayResult r = serve::replay(service, reqs, ropts);
    EXPECT_EQ(nreq, r.stats.converged);
    reference = r.stats.combined_digest;
  }

  for (const int threads : {1, 2}) {
    serve::Service service(block_service_options(), a);
    const std::vector<serve::ServeRequest> reqs =
        serve::make_requests(nreq, 1, service.epoch(), customize_at);
    serve::ReplayOptions ropts;
    ropts.threads = threads;
    ropts.customize_at = customize_at;
    ropts.batch = 4;
    const serve::ReplayResult r = serve::replay(service, reqs, ropts);
    EXPECT_EQ(nreq, r.stats.converged) << "threads=" << threads;
    EXPECT_EQ(check::digest_hex(reference), check::digest_hex(r.stats.combined_digest))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace parmis
