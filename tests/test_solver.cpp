/// \file test_solver.cpp
/// \brief Tests for the solver substrate: vector ops, dense LU, Jacobi,
/// Gauss-Seidel variants (serial / point multicolor / cluster multicolor),
/// CG, and GMRES.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/spmv.hpp"
#include "parallel/execution.hpp"
#include "solver/cg.hpp"
#include "solver/cluster_gs.hpp"
#include "solver/dense_lu.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis::solver {
namespace {

double residual_norm(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<const scalar_t> x) {
  std::vector<scalar_t> r(b.size());
  graph::spmv(a, x, r);
  axpby(1.0, b, -1.0, r);
  return norm2(r);
}

TEST(VectorOps, DotAndNorm) {
  std::vector<scalar_t> a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
}

TEST(VectorOps, AxpbyAndScale) {
  std::vector<scalar_t> x{1, 2}, y{10, 20};
  axpby(2.0, x, -1.0, y);
  EXPECT_DOUBLE_EQ(y[0], -8);
  EXPECT_DOUBLE_EQ(y[1], -16);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[0], -4);
  fill(y, 7.5);
  EXPECT_DOUBLE_EQ(y[1], 7.5);
}

TEST(VectorOps, DotThreadCountInvariant) {
  const std::vector<scalar_t> a = random_vector(200000, 1);
  const std::vector<scalar_t> b = random_vector(200000, 2);
  scalar_t serial_dot, parallel_dot;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_dot = dot(a, b);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_dot = dot(a, b);
  }
  EXPECT_EQ(serial_dot, parallel_dot);  // bitwise
}

TEST(DenseLU, SolvesSmallSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
  const graph::CrsMatrix a =
      graph::matrix_from_coo(2, 2, {{0, 0, 2}, {0, 1, 1}, {1, 0, 1}, {1, 1, 3}});
  DenseLU lu(a);
  std::vector<scalar_t> b{3, 5}, x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(DenseLU, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] requires a row swap.
  const graph::CrsMatrix a = graph::matrix_from_coo(2, 2, {{0, 1, 1}, {1, 0, 1}});
  DenseLU lu(a);
  std::vector<scalar_t> b{5, 7}, x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 7, 1e-12);
  EXPECT_NEAR(x[1], 5, 1e-12);
}

TEST(DenseLU, ThrowsOnSingular) {
  const graph::CrsMatrix a =
      graph::matrix_from_coo(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 0, 2}, {1, 1, 4}});
  EXPECT_THROW(DenseLU{a}, std::runtime_error);
}

TEST(DenseLU, RandomSystemsRoundTrip) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const ordinal_t n = 40;
    rng::SplitMix64 gen(seed);
    std::vector<graph::Triplet> t;
    for (ordinal_t i = 0; i < n; ++i) {
      t.push_back({i, i, 5.0 + gen.next_double()});  // dominant diagonal
      for (int k = 0; k < 4; ++k) {
        t.push_back({i, static_cast<ordinal_t>(gen.next_below(n)), gen.next_double() - 0.5});
      }
    }
    const graph::CrsMatrix a = graph::matrix_from_coo(n, n, t);
    DenseLU lu(a);
    const std::vector<scalar_t> x_true = random_vector(n, seed + 10);
    std::vector<scalar_t> b(n), x(n);
    graph::spmv(a, x_true, b);
    lu.solve(b, x);
    for (ordinal_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-9);
    }
  }
}

TEST(Jacobi, ReducesResidualMonotonically) {
  const graph::CrsMatrix a = graph::laplace2d(12, 12);
  const std::vector<scalar_t> inv_diag = inverted_diagonal(a);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 4);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  double prev = residual_norm(a, b, x);
  for (int step = 0; step < 5; ++step) {
    jacobi_smooth(a, inv_diag, b, x, 2, 2.0 / 3.0);
    const double cur = residual_norm(a, b, x);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(SerialGS, ConvergesOnSPD) {
  const graph::CrsMatrix a = graph::laplace2d(10, 10);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 5);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  const double r0 = residual_norm(a, b, x);
  for (int s = 0; s < 30; ++s) serial_gs_sweep(a, b, x, SweepDirection::Forward);
  EXPECT_LT(residual_norm(a, b, x), 0.05 * r0);
}

TEST(PointMulticolorGS, MatchesSerialReductionRate) {
  // Multicolor GS is GS in a permuted order: per-sweep residual reduction
  // should be in the same ballpark as serial GS on a mesh.
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 6);

  std::vector<scalar_t> xs(static_cast<std::size_t>(a.num_rows), 0);
  std::vector<scalar_t> xm = xs;
  PointMulticolorGS mgs(a);
  for (int s = 0; s < 10; ++s) {
    serial_gs_sweep(a, b, xs, SweepDirection::Forward);
    mgs.sweep(a, b, xm, SweepDirection::Forward);
  }
  const double rs = residual_norm(a, b, xs);
  const double rm = residual_norm(a, b, xm);
  EXPECT_LT(rm, 3.0 * rs + 1e-12);
}

TEST(PointMulticolorGS, SingleColorPerClassUpdatesAreExactGS) {
  // On a graph with an independent-set partition, rows of one color never
  // read each other's x: one sweep must equal serial GS applied in the
  // color-class order. Verify on a small case via explicit reorder.
  const graph::CrsMatrix a = graph::laplace2d(6, 6);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 7);
  PointMulticolorGS mgs(a);

  std::vector<scalar_t> x1(static_cast<std::size_t>(a.num_rows), 0);
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    mgs.sweep(a, b, x1, SweepDirection::Forward);
  }
  std::vector<scalar_t> x2(static_cast<std::size_t>(a.num_rows), 0);
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    mgs.sweep(a, b, x2, SweepDirection::Forward);
  }
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_EQ(x1[i], x2[i]);  // bitwise: no same-color coupling
  }
}

TEST(ClusterGS, ConvergesAndBeatsPointGSInIterations) {
  // The Algorithm 4 claim: cluster GS preconditions better than point GS.
  const graph::CrsMatrix a = graph::laplace3d(12, 12, 12);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 8);

  IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 500;

  std::vector<scalar_t> xp(static_cast<std::size_t>(a.num_rows), 0);
  PointGsPreconditioner point_prec(a);
  const IterResult point_result = gmres(a, b, xp, opts, &point_prec);

  std::vector<scalar_t> xc(static_cast<std::size_t>(a.num_rows), 0);
  ClusterGsPreconditioner cluster_prec(a);
  const IterResult cluster_result = gmres(a, b, xc, opts, &cluster_prec);

  EXPECT_TRUE(point_result.converged);
  EXPECT_TRUE(cluster_result.converged);
  EXPECT_LE(cluster_result.iterations, point_result.iterations);
}

TEST(ClusterGS, SingletonClustersReduceToPointGS) {
  // With aggregates of size 1 the cluster method *is* point multicolor GS.
  // Force that by clustering a graph with no edges inside aggregates:
  // every aggregate in a complete graph's MIS-2 aggregation is the whole
  // graph, so instead use an edgeless graph where every vertex is its own
  // aggregate: one Jacobi-like sweep must solve the diagonal system.
  const graph::CrsMatrix a =
      graph::matrix_from_coo(4, 4, {{0, 0, 2}, {1, 1, 4}, {2, 2, 5}, {3, 3, 8}});
  ClusterMulticolorGS gs(a);
  EXPECT_EQ(gs.num_clusters(), 4);
  std::vector<scalar_t> b{2, 4, 10, 16}, x(4, 0.0);
  gs.sweep(a, b, x, SweepDirection::Forward);
  EXPECT_DOUBLE_EQ(x[0], 1);
  EXPECT_DOUBLE_EQ(x[1], 1);
  EXPECT_DOUBLE_EQ(x[2], 2);
  EXPECT_DOUBLE_EQ(x[3], 2);
}

TEST(ClusterGS, DeterministicAcrossThreads) {
  const graph::CrsMatrix a =
      graph::laplacian_matrix(graph::random_geometric_3d(3000, 12.0, 19), 0.5);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 9);
  ClusterMulticolorGS gs(a);
  std::vector<scalar_t> x1(static_cast<std::size_t>(a.num_rows), 0), x2 = x1;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    gs.symmetric_sweep(a, b, x1);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    gs.symmetric_sweep(a, b, x2);
  }
  EXPECT_EQ(x1, x2);
}

TEST(Cg, SolvesLaplaceToTightTolerance) {
  const graph::CrsMatrix a = graph::laplace3d(8, 8, 8);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 10);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 2000;
  const IterResult r = cg(a, b, x, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(a, b, x) / norm2(b), 1e-9);
}

TEST(Cg, PreconditioningReducesIterations) {
  const graph::CrsMatrix a = graph::laplace2d(40, 40);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 11);
  IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 3000;

  std::vector<scalar_t> x0(static_cast<std::size_t>(a.num_rows), 0);
  const IterResult plain = cg(a, b, x0, opts);

  std::vector<scalar_t> x1(static_cast<std::size_t>(a.num_rows), 0);
  PointGsPreconditioner prec(a);
  const IterResult preconditioned = cg(a, b, x1, opts, &prec);

  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, plain.iterations);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const graph::CrsMatrix a = graph::laplace2d(5, 5);
  std::vector<scalar_t> b(static_cast<std::size_t>(a.num_rows), 0);
  std::vector<scalar_t> x = random_vector(a.num_rows, 12);
  const IterResult r = cg(a, b, x);
  EXPECT_TRUE(r.converged);
  for (scalar_t v : x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, HistoryTracksMonotoneTail)  {
  const graph::CrsMatrix a = graph::laplace2d(15, 15);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 13);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions opts;
  opts.track_history = true;
  opts.tolerance = 1e-10;
  opts.max_iterations = 1000;
  const IterResult r = cg(a, b, x, opts);
  ASSERT_GT(r.history.size(), 2u);
  EXPECT_LT(r.history.back(), r.history.front());
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  // Laplace + skew perturbation: still nonsingular, not symmetric.
  graph::CrsMatrix a = graph::laplace2d(12, 12);
  for (ordinal_t i = 0; i < a.num_rows; ++i) {
    for (offset_t j = a.row_map[i]; j < a.row_map[i + 1]; ++j) {
      const ordinal_t c = a.entries[static_cast<std::size_t>(j)];
      if (c > i) a.values[static_cast<std::size_t>(j)] *= 1.25;
    }
  }
  const std::vector<scalar_t> b = random_vector(a.num_rows, 14);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 2000;
  const IterResult r = gmres(a, b, x, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(a, b, x) / norm2(b), 1e-8);
}

TEST(Gmres, RestartStillConverges) {
  const graph::CrsMatrix a = graph::laplace2d(20, 20);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 15);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 5000;
  const IterResult r = gmres(a, b, x, opts, nullptr, 10);  // tiny restart
  EXPECT_TRUE(r.converged);
}

TEST(Gmres, RightPreconditionedResidualIsTrueResidual) {
  const graph::CrsMatrix a = graph::laplace2d(15, 15);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 16);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  PointGsPreconditioner prec(a);
  IterOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 1000;
  const IterResult r = gmres(a, b, x, opts, &prec);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(residual_norm(a, b, x) / norm2(b), r.relative_residual,
              1e-6 + 0.5 * r.relative_residual);
}

TEST(Gmres, IterationCountThreadInvariant) {
  const graph::CrsMatrix a = graph::laplace2d(25, 25);
  const std::vector<scalar_t> b = random_vector(a.num_rows, 17);
  IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 2000;
  int serial_iters, parallel_iters;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    serial_iters = gmres(a, b, x, opts).iterations;
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    parallel_iters = gmres(a, b, x, opts).iterations;
  }
  EXPECT_EQ(serial_iters, parallel_iters);
}

}  // namespace
}  // namespace parmis::solver
