/// \file test_aggregation.cpp
/// \brief Tests for Algorithms 2 and 3, coarse graphs, and the multilevel
/// driver.

#include <gtest/gtest.h>

#include <set>

#include "core/aggregation.hpp"
#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "core/verify.hpp"
#include "graph/ops.hpp"
#include "parallel/execution.hpp"
#include "test_utils.hpp"

namespace parmis::core {
namespace {

using test::NamedGraph;

TEST(AggregateBasic, TotalAndValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    const Aggregation agg = aggregate_basic(ng.g);
    EXPECT_TRUE(verify_aggregation(ng.g, agg)) << ng.name;
    EXPECT_GT(agg.num_aggregates, 0) << ng.name;
  }
}

TEST(AggregateMis2, TotalAndValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    const Aggregation agg = aggregate_mis2(ng.g);
    EXPECT_TRUE(verify_aggregation(ng.g, agg)) << ng.name;
  }
}

TEST(AggregateBasic, RootsFormValidMis2) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(20, 20));
  const Aggregation agg = aggregate_basic(g);
  std::vector<char> in_set(static_cast<std::size_t>(g.num_rows), 0);
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    in_set[static_cast<std::size_t>(agg.roots[static_cast<std::size_t>(a)])] = 1;
  }
  EXPECT_TRUE(verify_mis2(g, in_set));
}

TEST(AggregateMis2, Phase1RootsAreMis2Phase2RootsAreNot) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(8, 8, 8));
  const Aggregation agg = aggregate_mis2(g);
  // Phase-1 roots (the leading block) must be distance-2 independent.
  std::vector<char> p1(static_cast<std::size_t>(g.num_rows), 0);
  ordinal_t phase1_count = 0;
  {
    const Mis2Result direct = mis2(g);  // same options => same MIS-2
    phase1_count = direct.set_size();
    for (ordinal_t i = 0; i < phase1_count; ++i) {
      EXPECT_EQ(agg.roots[static_cast<std::size_t>(i)], direct.members[static_cast<std::size_t>(i)]);
      p1[static_cast<std::size_t>(agg.roots[static_cast<std::size_t>(i)])] = 1;
    }
  }
  EXPECT_TRUE(is_distance_k_independent(g, p1, 2));
  // Phase-2 roots exist on meshes (leftover pockets are common).
  EXPECT_GE(static_cast<ordinal_t>(agg.roots.size()), phase1_count);
}

TEST(AggregateMis2, SecondaryAggregatesHaveAtLeastThreeVertices) {
  // Phase-2 roots are only accepted with >= 2 unaggregated neighbors, so
  // every secondary aggregate starts with >= 3 members and can only grow
  // in cleanup.
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(9, 9, 9));
  const Aggregation agg = aggregate_mis2(g);
  const Mis2Result phase1 = mis2(g);
  std::vector<ordinal_t> size(static_cast<std::size_t>(agg.num_aggregates), 0);
  for (ordinal_t a : agg.labels) ++size[static_cast<std::size_t>(a)];
  for (ordinal_t a = phase1.set_size(); a < agg.num_aggregates; ++a) {
    EXPECT_GE(size[static_cast<std::size_t>(a)], 3) << "secondary aggregate " << a;
  }
}

TEST(AggregateMis2, DeterministicAcrossThreads) {
  const graph::CrsGraph g = graph::random_geometric_3d(5000, 14.0, 11);
  Aggregation serial_agg, parallel_agg;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_agg = aggregate_mis2(g);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_agg = aggregate_mis2(g);
  }
  EXPECT_EQ(serial_agg.labels, parallel_agg.labels);
  EXPECT_EQ(serial_agg.roots, parallel_agg.roots);
}

TEST(AggregateBasic, DeterministicAcrossThreads) {
  const graph::CrsGraph g = graph::random_geometric_3d(5000, 14.0, 12);
  Aggregation serial_agg, parallel_agg;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_agg = aggregate_basic(g);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_agg = aggregate_basic(g);
  }
  EXPECT_EQ(serial_agg.labels, parallel_agg.labels);
}

TEST(AggregateMis2, CleanupPrefersStrongerCoupling) {
  // Build a graph where a leftover vertex x has 1 edge into aggregate A's
  // territory and 2 edges into B's: x must join B.
  //
  //   A-root: 0 with neighbors 1,2      B-root: 10 with neighbors 11,12,13
  //   x = 20 connects to {1} and {11,12}.
  // To force 0 and 10 to be phase-1 roots use a long separating path.
  std::vector<graph::Edge> e{{0, 1}, {0, 2}, {10, 11}, {10, 12}, {10, 13},
                             {20, 1}, {20, 11}, {20, 12},
                             // path keeping 0 and 10 > distance 2 apart
                             {2, 30}, {30, 31}, {31, 13}};
  const graph::CrsGraph g = graph::graph_from_edges(32, e);
  const Aggregation agg = aggregate_mis2(g);
  EXPECT_TRUE(verify_aggregation(g, agg));
  // Whatever ids A and B got, x (=20) must share a label with 11 and 12
  // if they are together, since coupling(B)=2 > coupling(A)=1 — unless x
  // was already absorbed in an earlier phase (then it has >=1 of them as
  // a co-member anyway). Check the coupling rule only when x was a
  // cleanup vertex: x's label must equal the label of 11/12 when those
  // two agree and differ from 1's label.
  const ordinal_t lx = agg.labels[20], l11 = agg.labels[11], l12 = agg.labels[12];
  const ordinal_t l1 = agg.labels[1];
  if (l11 == l12 && l11 != l1) {
    EXPECT_EQ(lx, l11);
  }
}

TEST(AggregationStats, SizesAddUp) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(30, 30));
  const Aggregation agg = aggregate_mis2(g);
  const AggregationStats s = aggregation_stats(agg);
  EXPECT_EQ(s.num_aggregates, agg.num_aggregates);
  EXPECT_GE(s.min_size, 1);
  EXPECT_LE(s.min_size, s.max_size);
  EXPECT_NEAR(s.avg_size * agg.num_aggregates, static_cast<double>(g.num_rows), 1e-9);
}

TEST(VerifyAggregation, CatchesBrokenLabelings) {
  const graph::CrsGraph g = test::path_graph(6);
  Aggregation agg = aggregate_basic(g);
  ASSERT_TRUE(verify_aggregation(g, agg));

  Aggregation out_of_range = agg;
  out_of_range.labels[0] = agg.num_aggregates + 5;
  EXPECT_FALSE(verify_aggregation(g, out_of_range));

  Aggregation bad_root = agg;
  if (bad_root.num_aggregates >= 2) {
    std::swap(bad_root.roots[0], bad_root.roots[1]);
    EXPECT_FALSE(verify_aggregation(g, bad_root));
  }
}

TEST(VerifyAggregation, CatchesDisconnectedAggregates) {
  // Label two far-apart path vertices into the same aggregate.
  const graph::CrsGraph g = test::path_graph(8);
  Aggregation agg;
  agg.num_aggregates = 2;
  agg.roots = {0, 4};
  agg.labels = {0, 0, 1, 1, 1, 1, 1, 0};  // vertex 7 disconnected from root 0
  EXPECT_FALSE(verify_aggregation(g, agg));
}

TEST(CoarseGraph, QuotientOfGridIsMeshLike) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(16, 16));
  const Aggregation agg = aggregate_mis2(g);
  const graph::CrsGraph c = coarse_graph(g, agg);
  EXPECT_EQ(c.num_rows, agg.num_aggregates);
  EXPECT_TRUE(c.validate());
  EXPECT_TRUE(graph::is_symmetric(c));
  EXPECT_FALSE(graph::has_self_loops(c));
  // Coarse edges must correspond to at least one fine cross edge.
  for (ordinal_t a = 0; a < c.num_rows; ++a) {
    for (ordinal_t b : c.row(a)) {
      bool found = false;
      for (ordinal_t v = 0; v < g.num_rows && !found; ++v) {
        if (agg.labels[static_cast<std::size_t>(v)] != a) continue;
        for (ordinal_t w : g.row(v)) {
          if (agg.labels[static_cast<std::size_t>(w)] == b) {
            found = true;
            break;
          }
        }
      }
      EXPECT_TRUE(found) << "phantom coarse edge " << a << "-" << b;
    }
  }
}

TEST(CoarseGraph, CompleteCrossEdgeCoverage) {
  // Converse of the above: every fine cross edge appears in the quotient.
  const graph::CrsGraph g = test::er_graph(150, 0.04, 55);
  const Aggregation agg = aggregate_basic(g);
  const graph::CrsGraph c = coarse_graph(g, agg);
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    for (ordinal_t w : g.row(v)) {
      const ordinal_t a = agg.labels[static_cast<std::size_t>(v)];
      const ordinal_t b = agg.labels[static_cast<std::size_t>(w)];
      if (a == b) continue;
      auto row = c.row(a);
      EXPECT_TRUE(std::binary_search(row.begin(), row.end(), b))
          << "missing coarse edge " << a << "-" << b;
    }
  }
}

TEST(AggregateMembers, CsrPartitionsVertices) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(12, 12));
  const Aggregation agg = aggregate_mis2(g);
  const AggregateMembers mem = aggregate_members(agg);
  EXPECT_EQ(static_cast<ordinal_t>(mem.members.size()), g.num_rows);
  std::set<ordinal_t> seen;
  for (ordinal_t a = 0; a < agg.num_aggregates; ++a) {
    for (offset_t i = mem.offsets[static_cast<std::size_t>(a)];
         i < mem.offsets[static_cast<std::size_t>(a) + 1]; ++i) {
      const ordinal_t v = mem.members[static_cast<std::size_t>(i)];
      EXPECT_EQ(agg.labels[static_cast<std::size_t>(v)], a);
      EXPECT_TRUE(seen.insert(v).second);
    }
  }
  EXPECT_EQ(static_cast<ordinal_t>(seen.size()), g.num_rows);
}

TEST(Multilevel, CoarsensGridToTarget) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(40, 40));
  MultilevelOptions opts;
  opts.target_vertices = 20;
  const MultilevelHierarchy h = multilevel_coarsen(g, opts);
  ASSERT_FALSE(h.levels.empty());
  EXPECT_LE(h.levels.back().graph.num_rows, 120);  // near target; stall-guarded
  // Sizes strictly decrease.
  ordinal_t prev = g.num_rows;
  for (const CoarsenLevel& lvl : h.levels) {
    EXPECT_LT(lvl.graph.num_rows, prev);
    prev = lvl.graph.num_rows;
  }
}

TEST(Multilevel, ProjectionIsConsistent) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(20, 20));
  MultilevelOptions opts;
  opts.target_vertices = 10;
  const MultilevelHierarchy h = multilevel_coarsen(g, opts);
  ASSERT_FALSE(h.levels.empty());
  const ordinal_t coarse_n = h.levels.back().graph.num_rows;
  for (ordinal_t v = 0; v < g.num_rows; ++v) {
    const ordinal_t cv = h.project(v);
    EXPECT_GE(cv, 0);
    EXPECT_LT(cv, coarse_n);
  }
}

TEST(Multilevel, EveryRegisteredCoarsenerWorks) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(10, 10, 10));
  for (const std::string& name : coarsener_names()) {
    MultilevelOptions opts;
    opts.coarsener = name;
    opts.target_vertices = 50;
    const MultilevelHierarchy h = multilevel_coarsen(g, opts);
    EXPECT_FALSE(h.levels.empty()) << "coarsener=" << name;
    for (std::size_t l = 0; l < h.levels.size(); ++l) {
      const graph::GraphView fine = l == 0 ? graph::GraphView(g) : h.levels[l - 1].graph;
      EXPECT_TRUE(verify_aggregation(fine, h.levels[l].aggregation))
          << "coarsener=" << name << " level=" << l;
    }
  }
}

}  // namespace
}  // namespace parmis::core
