/// \file test_solver_stack.cpp
/// \brief Tests for the unified solver-stack API: the string-keyed Solver /
/// Preconditioner registries, `SolveHandle` (zero-allocation warm solves,
/// preconditioner caching, registry composition with the core coarseners),
/// and the per-handle telemetry counters.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/coarsener.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "graph/spmv.hpp"
#include "solver/cg.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/handle.hpp"
#include "solver/interface.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis::solver {
namespace {

/// Well-conditioned SPD test matrix: graph Laplacian + I of a 3D mesh.
/// λ ∈ [1, 2·maxdeg + 1], so the condition number stays under Chebyshev's
/// default eig_ratio of 20 and every registered solver converges on it.
const graph::CrsMatrix& mesh_matrix() {
  static const graph::CrsMatrix a =
      graph::laplacian_matrix(test::adjacency_of(graph::laplace3d(10, 10, 10)), 1.0);
  return a;
}

/// A larger matrix of the same family (capacity-reuse tests).
const graph::CrsMatrix& rgg_matrix() {
  static const graph::CrsMatrix a =
      graph::laplacian_matrix(graph::random_geometric_3d(4000, 12.0, 11), 1.0);
  return a;
}

double residual_norm(const graph::CrsMatrix& a, std::span<const scalar_t> b,
                     std::span<const scalar_t> x) {
  std::vector<scalar_t> r(b.size());
  graph::spmv(a, x, r);
  axpby(1.0, b, -1.0, r);
  return norm2(r);
}

// ------------------------------------------------------------ registries

TEST(SolverRegistry, NamesAndLookup) {
  const std::vector<std::string> names = solver_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names.front(), "cg");  // the Table V outer solver leads
  for (const std::string& name : names) {
    const auto solver = make_solver(name);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), name);
    EXPECT_FALSE(find_solver(name).description.empty());
  }
  EXPECT_THROW((void)find_solver("no-such-solver"), std::out_of_range);
  EXPECT_THROW((void)make_solver("bicgstab"), std::out_of_range);
}

TEST(PreconditionerRegistry, NamesAndLookup) {
  const std::vector<std::string> names = preconditioner_names();
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names.front(), "none");
  for (const std::string& name : names) {
    EXPECT_FALSE(find_preconditioner(name).description.empty());
  }
  EXPECT_THROW((void)find_preconditioner("ilu"), std::out_of_range);
}

TEST(PreconditionerRegistry, EveryEntryBuildsAndApplies) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> r = random_vector(a.num_rows, 3);
  for (const std::string& name : preconditioner_names()) {
    const auto prec = make_preconditioner(name, a);
    ASSERT_NE(prec, nullptr) << name;
    std::vector<scalar_t> z(static_cast<std::size_t>(a.num_rows), 0);
    prec->apply(r, z);
    // M^{-1} r of an SPD approximation must be a nonzero vector.
    EXPECT_GT(norm2(z), 0.0) << name;
  }
}

// ----------------------------------------------------------- SolveHandle

TEST(SolveHandle, UnknownNamesThrowAndLeaveHandleUsable) {
  SolveHandle h;
  EXPECT_THROW(h.set_solver("no-such-solver"), std::out_of_range);
  EXPECT_THROW(h.set_preconditioner("no-such-prec"), std::out_of_range);
  EXPECT_THROW(SolveHandle("cg", "no-such-prec"), std::out_of_range);
  // The failed sets left the defaults in place.
  EXPECT_EQ(h.solver_name(), "cg");
  EXPECT_EQ(h.preconditioner_name(), "none");
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 4);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  EXPECT_TRUE(h.solve(a, b, x).converged);
}

TEST(SolveHandle, EverySolverPreconditionerPairConverges) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 5);
  IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 600;
  for (const std::string& sname : solver_names()) {
    for (const std::string& pname : preconditioner_names()) {
      SolveHandle h(sname, pname);
      std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
      const IterResult& r = h.solve(a, b, x, opts);
      EXPECT_TRUE(r.converged) << sname << "+" << pname;
      EXPECT_LE(residual_norm(a, b, x) / norm2(b), 1e-6) << sname << "+" << pname;
    }
  }
}

TEST(SolveHandle, WarmSolvesAreAllocationFreeAndBitIdentical) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 6);
  IterOptions opts;
  opts.track_history = true;  // history storage is part of the contract
  for (const std::string& sname : solver_names()) {
    // Solvers that ignore preconditioning never build one ("chebyshev").
    const std::uint64_t expect_setups = make_solver(sname)->uses_preconditioner() ? 1u : 0u;
    SolveHandle h(sname, "jacobi");
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    h.solve(a, b, x, opts);
    const std::vector<scalar_t> first_x = x;
    const int first_iters = h.result().iterations;
    const std::size_t warm_capacity = h.scratch_bytes();
    EXPECT_GT(warm_capacity, 0u) << sname;
    const std::uint64_t cold_grows = h.stats().scratch_grows;
    EXPECT_GE(cold_grows, 1u) << sname;

    for (int rep = 0; rep < 3; ++rep) {
      std::fill(x.begin(), x.end(), 0.0);
      const IterResult& again = h.solve(a, b, x, opts);
      // Zero-allocation warm-solve contract: capacity and the growth
      // counter are both frozen...
      EXPECT_EQ(h.scratch_bytes(), warm_capacity) << sname << " rep=" << rep;
      EXPECT_EQ(h.stats().scratch_grows, cold_grows) << sname << " rep=" << rep;
      // ...the preconditioner was not rebuilt...
      EXPECT_EQ(h.stats().prec_setups, expect_setups) << sname << " rep=" << rep;
      // ...and the results are bit-identical.
      EXPECT_EQ(x, first_x) << sname << " rep=" << rep;
      EXPECT_EQ(again.iterations, first_iters) << sname << " rep=" << rep;
    }
  }
}

TEST(SolveHandle, InvalidateDropsChebyshevSetupState) {
  // invalidate() must reach *all* matrix-dependent setup state, including
  // the workspace-cached Chebyshev smoother — the escape hatch for a
  // matrix whose values changed in place (same address and structure).
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 15);
  SolveHandle h("chebyshev", "none");
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  h.solve(a, b, x);
  const std::uint64_t cold_grows = h.stats().scratch_grows;

  std::fill(x.begin(), x.end(), 0.0);
  h.solve(a, b, x);
  EXPECT_EQ(h.stats().scratch_grows, cold_grows);  // warm: smoother reused

  h.invalidate();
  std::fill(x.begin(), x.end(), 0.0);
  h.solve(a, b, x);
  // The smoother rebuild is an allocation event even though its memory is
  // outside scratch_bytes() — grow_events catches it.
  EXPECT_EQ(h.stats().scratch_grows, cold_grows + 1);
}

TEST(SolveHandle, SmallerMatrixReusesCapacityOfLarger) {
  // Size-compatible warm solves: after solving on the big matrix, a solve
  // on a smaller one must fit entirely in the existing scratch. "jacobi"
  // rebuilds its (matrix-sized) state, but the handle's iteration scratch
  // does not grow.
  SolveHandle h("gmres", "jacobi");
  const std::vector<scalar_t> b_big = random_vector(rgg_matrix().num_rows, 7);
  std::vector<scalar_t> x_big(static_cast<std::size_t>(rgg_matrix().num_rows), 0);
  h.solve(rgg_matrix(), b_big, x_big);
  const std::size_t big_capacity = h.scratch_bytes();
  const std::uint64_t big_grows = h.stats().scratch_grows;

  const std::vector<scalar_t> b_small = random_vector(mesh_matrix().num_rows, 8);
  std::vector<scalar_t> x_small(static_cast<std::size_t>(mesh_matrix().num_rows), 0);
  const IterResult& r = h.solve(mesh_matrix(), b_small, x_small);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(h.scratch_bytes(), big_capacity);
  EXPECT_EQ(h.stats().scratch_grows, big_grows);
  EXPECT_EQ(h.stats().prec_setups, 2u);  // one per matrix
}

TEST(SolveHandle, TelemetryCountersAccumulate) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 9);
  SolveHandle h("cg", "gs");
  EXPECT_EQ(h.stats().solves, 0u);
  EXPECT_EQ(h.stats().prec_setups, 0u);

  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  std::uint64_t expect_iters = 0;
  for (int rep = 1; rep <= 3; ++rep) {
    std::fill(x.begin(), x.end(), 0.0);
    const IterResult& r = h.solve(a, b, x);
    expect_iters += static_cast<std::uint64_t>(r.iterations);
    EXPECT_EQ(h.stats().solves, static_cast<std::uint64_t>(rep));
    EXPECT_EQ(h.stats().iterations, expect_iters);
    EXPECT_EQ(h.stats().converged, static_cast<std::uint64_t>(rep));
    EXPECT_EQ(h.stats().prec_setups, 1u);
  }

  // invalidate() forces one rebuild on the next solve.
  h.invalidate();
  std::fill(x.begin(), x.end(), 0.0);
  h.solve(a, b, x);
  EXPECT_EQ(h.stats().prec_setups, 2u);
  EXPECT_EQ(h.stats().solves, 4u);
}

TEST(SolveHandle, ResidualHistoryIsRecorded) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 10);
  SolveHandle h("cg", "none");
  IterOptions opts;
  opts.track_history = true;
  opts.tolerance = 1e-10;
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  const IterResult& r = h.solve(a, b, x, opts);
  ASSERT_EQ(r.history.size(), static_cast<std::size_t>(r.iterations) + 1);
  EXPECT_LT(r.history.back(), r.history.front());
  EXPECT_LE(r.history.back(), opts.tolerance);
}

TEST(SolveHandle, MatchesFreeFunctionShims) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 11);
  IterOptions opts;
  opts.tolerance = 1e-9;

  {
    SolveHandle h("cg", "none");
    std::vector<scalar_t> xh(static_cast<std::size_t>(a.num_rows), 0);
    std::vector<scalar_t> xf = xh;
    const IterResult& rh = h.solve(a, b, xh, opts);
    const IterResult rf = cg(a, b, xf, opts);
    EXPECT_EQ(xh, xf);  // bitwise
    EXPECT_EQ(rh.iterations, rf.iterations);
  }
  {
    SolveHandle h("gmres", "gs");
    std::vector<scalar_t> xh(static_cast<std::size_t>(a.num_rows), 0);
    std::vector<scalar_t> xf = xh;
    const IterResult& rh = h.solve(a, b, xh, opts);
    PointGsPreconditioner prec(a);  // the registry's "gs" at default sweeps
    const IterResult rf = gmres(a, b, xf, opts, &prec);
    EXPECT_EQ(xh, xf);
    EXPECT_EQ(rh.iterations, rf.iterations);
  }
}

TEST(SolveHandle, AmgComposesWithEveryRegisteredCoarsener) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 12);
  IterOptions opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 100;
  for (const std::string& coarsener : core::coarsener_names()) {
    SolveHandle h("cg", "amg");
    h.prec_options().amg.coarse_size = 200;
    h.prec_options().amg.coarsener = coarsener;
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    const IterResult& r = h.solve(a, b, x, opts);
    EXPECT_TRUE(r.converged) << "amg coarsener=" << coarsener;
    // The hierarchy really was built through the named coarsener.
    ASSERT_NE(h.preconditioner(), nullptr);
    EXPECT_EQ(h.preconditioner()->name(), "sa-amg(" + coarsener + ")");
  }
}

TEST(SolveHandle, ClusterGsComposesWithRegistryCoarseners) {
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 13);
  IterOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 300;
  for (const std::string& coarsener : {"mis2", "hem"}) {
    SolveHandle h("gmres", "cluster-gs");
    h.prec_options().coarsener = coarsener;
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    EXPECT_TRUE(h.solve(a, b, x, opts).converged) << "cluster-gs coarsener=" << coarsener;
  }
}

TEST(SolveHandle, OptionsContextOverridesHandleContext) {
  // A handle pinned to one context solves under opts.ctx when set; results
  // stay bit-identical (the determinism contract makes this observable
  // only through identical outputs, so assert exactly that).
  const graph::CrsMatrix& a = mesh_matrix();
  const std::vector<scalar_t> b = random_vector(a.num_rows, 14);
  SolveHandle serial_h("cg", "jacobi", Context::serial());
  std::vector<scalar_t> x1(static_cast<std::size_t>(a.num_rows), 0);
  serial_h.solve(a, b, x1);

  SolveHandle default_h("cg", "jacobi");
  IterOptions opts;
  opts.ctx = Context::serial();
  std::vector<scalar_t> x2(static_cast<std::size_t>(a.num_rows), 0);
  default_h.solve(a, b, x2, opts);
  EXPECT_EQ(x1, x2);
}

}  // namespace
}  // namespace parmis::solver
