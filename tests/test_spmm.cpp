/// \file test_spmm.cpp
/// \brief SpMM and multi-vector kernel tests: per-column bit-identity to
/// the single-vector kernels (the contract every block solver leans on),
/// schedule/backend determinism, and the masked-freeze semantics of the
/// deflation ops.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "check/digest.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/spmm.hpp"
#include "graph/spmv.hpp"
#include "parallel/context.hpp"
#include "solver/multivector.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

std::uint64_t bits(scalar_t v) { return std::bit_cast<std::uint64_t>(v); }

/// Matrices the SpMM tests sweep: stencils plus a hub-skewed Laplacian,
/// so both regular and adversarial row-length distributions are covered.
std::vector<graph::CrsMatrix> spmm_matrices() {
  std::vector<graph::CrsMatrix> ms;
  ms.push_back(graph::laplace3d(7, 7, 7));
  ms.push_back(graph::laplace2d(15, 13));
  ms.push_back(graph::laplacian_matrix(graph::power_law_graph(500, 2.2, 4, 80, 42), 1.0));
  return ms;
}

TEST(Spmm, MatchesSpmvPerColumn) {
  // Column c of spmm must be bit-identical to spmv on the gathered column
  // — each row accumulates serially in entry order per column, exactly
  // like the single-vector kernel. K values cross the register-block
  // width so both the full-group and remainder lanes are exercised.
  for (const graph::CrsMatrix& a : spmm_matrices()) {
    const ordinal_t n = a.num_rows;
    const std::size_t un = static_cast<std::size_t>(n);
    for (const int k : {1, 3, 8, 16, 17}) {
      const std::size_t uk = static_cast<std::size_t>(k);
      std::vector<scalar_t> x(un * uk);
      std::vector<scalar_t> y(un * uk);
      solver::random_fill(x, 7);
      graph::spmm(a, x, y, k);

      std::vector<scalar_t> xc(un);
      std::vector<scalar_t> yc(un);
      std::vector<scalar_t> ref(un);
      for (int c = 0; c < k; ++c) {
        solver::gather_column(x, n, k, c, std::span<scalar_t>(xc));
        solver::gather_column(y, n, k, c, std::span<scalar_t>(yc));
        graph::spmv(a, xc, ref);
        for (std::size_t i = 0; i < un; ++i) {
          ASSERT_EQ(bits(ref[i]), bits(yc[i])) << "rows=" << n << " k=" << k << " col=" << c
                                               << " row=" << i;
        }
      }
    }
  }
}

TEST(Spmm, AlphaBetaMatchesSpmvPerColumn) {
  // The accumulate overload: y = alpha*A*x + beta*y, per column equal to
  // the spmv overload bit for bit (same fma-free combine order).
  const graph::CrsMatrix a = graph::laplace3d(6, 5, 7);
  const ordinal_t n = a.num_rows;
  const std::size_t un = static_cast<std::size_t>(n);
  const int k = 5;
  const std::size_t uk = static_cast<std::size_t>(k);
  std::vector<scalar_t> x(un * uk);
  std::vector<scalar_t> y(un * uk);
  solver::random_fill(x, 11);
  solver::random_fill(y, 13);

  std::vector<scalar_t> xc(un);
  std::vector<scalar_t> ref(un);
  std::vector<std::vector<scalar_t>> refs;
  for (int c = 0; c < k; ++c) {
    solver::gather_column(x, n, k, c, std::span<scalar_t>(xc));
    solver::gather_column(y, n, k, c, std::span<scalar_t>(ref));
    graph::spmv(0.75, a, xc, -1.25, ref);
    refs.push_back(ref);
  }

  graph::spmm(0.75, a, x, -1.25, y, k);
  std::vector<scalar_t> yc(un);
  for (int c = 0; c < k; ++c) {
    solver::gather_column(y, n, k, c, std::span<scalar_t>(yc));
    for (std::size_t i = 0; i < un; ++i) {
      ASSERT_EQ(bits(refs[static_cast<std::size_t>(c)][i]), bits(yc[i]))
          << "col=" << c << " row=" << i;
    }
  }
}

TEST(Spmm, DeterministicAcrossBackendsAndSchedules) {
  // One digest per (backend, threads, schedule) cell; all must be equal —
  // the same contract spmv carries, extended to the K-wide kernel.
  const graph::CrsMatrix a =
      graph::laplacian_matrix(graph::power_law_graph(3000, 2.2, 3, 300, 5), 1.0);
  const ordinal_t n = a.num_rows;
  const int k = 8;
  std::vector<scalar_t> x(static_cast<std::size_t>(n) * k);
  std::vector<scalar_t> y(static_cast<std::size_t>(n) * k);
  solver::random_fill(x, 3);

  std::uint64_t reference = 0;
  bool first = true;
  for (const par::Schedule s : {par::Schedule::Static, par::Schedule::EdgeBalanced}) {
    for (const auto& [backend, threads] :
         std::vector<std::pair<par::Backend, int>>{{par::Backend::Serial, 1},
                                                   {par::Backend::OpenMP, 1},
                                                   {par::Backend::OpenMP, 3},
                                                   {par::Backend::OpenMP, 8}}) {
      Context ctx;
      ctx.backend = backend;
      ctx.num_threads = threads;
      ctx.schedule = s;
      Context::Scope scope(ctx);
      solver::fill(y, 0.0);
      graph::spmm(a, x, y, k);
      const std::uint64_t d = check::digest(y);
      if (first) {
        reference = d;
        first = false;
      } else {
        EXPECT_EQ(check::digest_hex(reference), check::digest_hex(d))
            << "backend=" << static_cast<int>(backend) << " threads=" << threads
            << " schedule=" << static_cast<int>(s);
      }
    }
  }
}

TEST(SpmmMultivector, DotAndNormsBitIdenticalToScalarKernels) {
  // n > reduce_chunk so the chunked tree is exercised: mv_dot must mirror
  // parallel_reduce's chunk boundaries and combine order per column.
  const ordinal_t n = 6000;
  const std::size_t un = static_cast<std::size_t>(n);
  const int k = 5;
  std::vector<scalar_t> a(un * k);
  std::vector<scalar_t> b(un * k);
  solver::random_fill(a, 17);
  solver::random_fill(b, 19);

  std::vector<scalar_t> dots(k);
  std::vector<scalar_t> norms(k);
  solver::mv_dot(a, b, n, k, dots);
  solver::mv_norms(a, n, k, norms);

  std::vector<scalar_t> ac(un);
  std::vector<scalar_t> bc(un);
  for (int c = 0; c < k; ++c) {
    solver::gather_column(a, n, k, c, std::span<scalar_t>(ac));
    solver::gather_column(b, n, k, c, std::span<scalar_t>(bc));
    EXPECT_EQ(bits(solver::dot(ac, bc)), bits(dots[static_cast<std::size_t>(c)])) << "col " << c;
    EXPECT_EQ(bits(solver::norm2(ac)), bits(norms[static_cast<std::size_t>(c)])) << "col " << c;
  }
}

TEST(SpmmMultivector, MaskedOpsLeaveFrozenLanesUntouched) {
  // Deflation semantics: a frozen column's lanes must keep their exact
  // bits — including negative zero and NaN — because freezing is an
  // explicit branch, not a zero coefficient.
  const ordinal_t n = 32;
  const int k = 3;
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<scalar_t> x(un * k);
  std::vector<scalar_t> y(un * k);
  solver::random_fill(x, 23);
  solver::random_fill(y, 29);
  // Poison the frozen column (index 1) with the adversarial bit patterns.
  y[0 * k + 1] = -0.0;
  y[1 * k + 1] = std::numeric_limits<scalar_t>::quiet_NaN();
  const std::vector<scalar_t> y0 = y;

  const std::vector<char> active = {1, 0, 1};
  solver::mv_axpby_masked(2.0, x, -0.5, y, n, k, active);
  for (std::size_t i = 0; i < un; ++i) {
    EXPECT_EQ(bits(y0[i * k + 1]), bits(y[i * k + 1])) << "frozen lane, row " << i;
    EXPECT_EQ(bits(2.0 * x[i * k + 0] + -0.5 * y0[i * k + 0]), bits(y[i * k + 0])) << "row " << i;
    EXPECT_EQ(bits(2.0 * x[i * k + 2] + -0.5 * y0[i * k + 2]), bits(y[i * k + 2])) << "row " << i;
  }

  // Per-column-coefficient variants honor the same mask.
  std::vector<scalar_t> y2 = y0;
  const std::vector<scalar_t> alpha = {0.25, 123.0, -4.0};
  solver::mv_axpy_cols(alpha, x, y2, n, k, active);
  for (std::size_t i = 0; i < un; ++i) {
    EXPECT_EQ(bits(y0[i * k + 1]), bits(y2[i * k + 1])) << "frozen lane, row " << i;
    EXPECT_EQ(bits(0.25 * x[i * k + 0] + y0[i * k + 0]), bits(y2[i * k + 0])) << "row " << i;
  }

  std::vector<scalar_t> y3 = y0;
  solver::mv_xpay_cols(x, alpha, y3, n, k, active);
  for (std::size_t i = 0; i < un; ++i) {
    EXPECT_EQ(bits(y0[i * k + 1]), bits(y3[i * k + 1])) << "frozen lane, row " << i;
    EXPECT_EQ(bits(x[i * k + 0] + 0.25 * y0[i * k + 0]), bits(y3[i * k + 0])) << "row " << i;
  }
}

TEST(SpmmMultivector, GatherScatterRoundTrip) {
  const ordinal_t n = 50;
  const int k = 4;
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<scalar_t> mv(un * k, 0.0);
  std::vector<scalar_t> col(un);
  std::vector<scalar_t> back(un);
  for (int c = 0; c < k; ++c) {
    solver::random_fill(col, static_cast<std::uint64_t>(100 + c));
    solver::scatter_column(col, n, k, c, mv);
    solver::gather_column(mv, n, k, c, std::span<scalar_t>(back));
    for (std::size_t i = 0; i < un; ++i) {
      ASSERT_EQ(bits(col[i]), bits(back[i])) << "col " << c << " row " << i;
    }
  }
}

}  // namespace
}  // namespace parmis
