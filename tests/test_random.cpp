/// \file test_random.cpp
/// \brief Tests for the hash/PRNG substrate (paper §V-A's generators).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "random/hash.hpp"

namespace parmis::rng {
namespace {

TEST(Xorshift, KnownAlgebra) {
  // xorshift64 is a bijection with 0 as its only fixed point.
  EXPECT_EQ(xorshift64(0), 0u);
  EXPECT_NE(xorshift64(1), 1u);
  // Spot value computed from the 13/7/17 shift triple definition.
  std::uint64_t x = 1;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  EXPECT_EQ(xorshift64(1), x);
}

TEST(Xorshift, InjectiveOnSample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 20000; ++i) {
    EXPECT_TRUE(seen.insert(xorshift64(i)).second) << "collision at " << i;
  }
}

TEST(XorshiftStar, InjectiveOnSample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 20000; ++i) {
    EXPECT_TRUE(seen.insert(xorshift64star(i)).second) << "collision at " << i;
  }
}

TEST(XorshiftStar, MultiplierApplied) {
  std::uint64_t x = 5;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  EXPECT_EQ(xorshift64star(5), x * 0x2545F4914F6CDD1DULL);
}

TEST(IterVertexHash, ChangesWithIterationAndVertex) {
  // The per-iteration re-randomization (paper §V-A) requires h to vary in
  // both arguments.
  EXPECT_NE(hash_xorshift_star(0, 1), hash_xorshift_star(1, 1));
  EXPECT_NE(hash_xorshift_star(0, 1), hash_xorshift_star(0, 2));
  EXPECT_NE(hash_xorshift(3, 10), hash_xorshift(4, 10));
}

TEST(IterVertexHash, Deterministic) {
  for (std::uint64_t it = 0; it < 5; ++it) {
    for (std::uint64_t v = 0; v < 100; ++v) {
      EXPECT_EQ(hash_xorshift_star(it, v), hash_xorshift_star(it, v));
    }
  }
}

TEST(XorshiftStarHash, TopBitsBalanced) {
  // Algorithm 1 uses the *high* bits as the priority; they must be roughly
  // uniform across vertices for any fixed iteration.
  for (std::uint64_t iter : {0ull, 1ull, 7ull}) {
    std::int64_t ones = 0;
    const std::int64_t samples = 40000;
    for (std::int64_t v = 0; v < samples; ++v) {
      ones += (hash_xorshift_star(iter, static_cast<std::uint64_t>(v)) >> 63) & 1;
    }
    const double frac = static_cast<double>(ones) / samples;
    EXPECT_NEAR(frac, 0.5, 0.02) << "iter " << iter;
  }
}

TEST(SplitMix, SequenceMatchesMixer) {
  SplitMix64 gen(42);
  const std::uint64_t a = gen.next();
  EXPECT_EQ(a, splitmix64_mix(42));
}

TEST(SplitMix, DoublesInUnitInterval) {
  SplitMix64 gen(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = gen.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(SplitMix, NextBelowInRangeAndCoversValues) {
  SplitMix64 gen(99);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = gen.next_below(10);
    ASSERT_LT(v, 10u);
    ++histogram[static_cast<std::size_t>(v)];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_GT(histogram[static_cast<std::size_t>(b)], 1500) << "bucket " << b;
  }
}

}  // namespace
}  // namespace parmis::rng
