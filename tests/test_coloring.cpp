/// \file test_coloring.cpp
/// \brief Tests for D1/D2 coloring and the D2C aggregation baselines.

#include <gtest/gtest.h>

#include "coloring/d1_coloring.hpp"
#include "coloring/d2_coloring.hpp"
#include "coloring/d2c_aggregation.hpp"
#include "coloring/verify.hpp"
#include "core/verify.hpp"
#include "graph/ops.hpp"
#include "parallel/execution.hpp"
#include "test_utils.hpp"

namespace parmis::coloring {
namespace {

using test::NamedGraph;

TEST(GreedyD1, ValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Coloring c = greedy_d1_coloring(ng.g);
    EXPECT_TRUE(verify_d1_coloring(ng.g, c)) << ng.name;
  }
}

TEST(ParallelD1, ValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Coloring c = parallel_d1_coloring(ng.g);
    EXPECT_TRUE(verify_d1_coloring(ng.g, c)) << ng.name;
  }
}

TEST(GreedyD1, ColorCountBounds) {
  // First-fit never exceeds maxdeg + 1.
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    const Coloring c = greedy_d1_coloring(ng.g);
    const graph::DegreeStats s = graph::degree_stats(ng.g);
    EXPECT_LE(c.num_colors, s.max_degree + 1) << ng.name;
  }
}

TEST(ParallelD1, ColorCountBounds) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    const Coloring c = parallel_d1_coloring(ng.g);
    const graph::DegreeStats s = graph::degree_stats(ng.g);
    EXPECT_LE(c.num_colors, s.max_degree + 1) << ng.name;
  }
}

TEST(GreedyD1, BipartiteUsesTwoColors) {
  const Coloring c = greedy_d1_coloring(test::path_graph(50));
  EXPECT_EQ(c.num_colors, 2);
}

TEST(GreedyD1, CliqueNeedsNColors) {
  const Coloring c = greedy_d1_coloring(test::complete_graph(7));
  EXPECT_EQ(c.num_colors, 7);
}

TEST(ParallelD1, DeterministicAcrossThreads) {
  const graph::CrsGraph g = graph::random_geometric_3d(4000, 14.0, 31);
  Coloring serial_c, parallel_c;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_c = parallel_d1_coloring(g);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_c = parallel_d1_coloring(g);
  }
  EXPECT_EQ(serial_c.colors, parallel_c.colors);
  EXPECT_EQ(serial_c.num_colors, parallel_c.num_colors);
}

TEST(ColorSets, PartitionByColor) {
  const graph::CrsGraph g = test::er_graph(100, 0.05, 3);
  const Coloring c = parallel_d1_coloring(g);
  const ColorSets sets = color_sets(c);
  EXPECT_EQ(static_cast<ordinal_t>(sets.vertices.size()), g.num_rows);
  for (ordinal_t col = 0; col < c.num_colors; ++col) {
    for (offset_t i = sets.offsets[static_cast<std::size_t>(col)];
         i < sets.offsets[static_cast<std::size_t>(col) + 1]; ++i) {
      EXPECT_EQ(c.colors[static_cast<std::size_t>(sets.vertices[static_cast<std::size_t>(i)])],
                col);
    }
  }
}

TEST(GreedyD2, ValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Coloring c = greedy_d2_coloring(ng.g);
    EXPECT_TRUE(verify_d2_coloring(ng.g, c)) << ng.name;
  }
}

TEST(ParallelD2, ValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    const Coloring c = parallel_d2_coloring(ng.g);
    EXPECT_TRUE(verify_d2_coloring(ng.g, c)) << ng.name;
  }
}

TEST(D2Coloring, EachColorClassIsDistance2Independent) {
  // The property D2C aggregation relies on.
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(15, 15));
  const Coloring c = parallel_d2_coloring(g);
  for (ordinal_t col = 0; col < c.num_colors; ++col) {
    std::vector<char> in_class(static_cast<std::size_t>(g.num_rows), 0);
    for (ordinal_t v = 0; v < g.num_rows; ++v) {
      in_class[static_cast<std::size_t>(v)] = c.colors[static_cast<std::size_t>(v)] == col;
    }
    EXPECT_TRUE(core::is_distance_k_independent(g, in_class, 2)) << "color " << col;
  }
}

TEST(D2Coloring, StarNeedsLeavesPlusHubColors) {
  // All leaves are pairwise distance 2: every vertex gets its own color.
  const Coloring c = greedy_d2_coloring(test::star_graph(6));
  EXPECT_EQ(c.num_colors, 7);
}

TEST(ParallelD2, DeterministicAcrossThreads) {
  // Large enough to exercise the speculative (non-fallback) path.
  const graph::CrsGraph g = graph::random_geometric_2d(60000, 7.0, 41);
  Coloring serial_c, parallel_c;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_c = parallel_d2_coloring(g);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_c = parallel_d2_coloring(g);
  }
  EXPECT_EQ(serial_c.colors, parallel_c.colors);
}

TEST(ParallelD2, SpeculativePathValidOnLargeGraphs) {
  // The family graphs are all below the serial-fallback cutoff; cover the
  // speculative path explicitly on a mesh and an RGG.
  const graph::CrsGraph mesh = test::adjacency_of(graph::laplace2d(260, 260));
  const Coloring cm = parallel_d2_coloring(mesh);
  EXPECT_GT(cm.rounds, 1);  // really took the speculative path
  EXPECT_TRUE(verify_d2_coloring(mesh, cm));

  const graph::CrsGraph rgg = graph::random_geometric_3d(70000, 14.0, 9);
  const Coloring cr = parallel_d2_coloring(rgg);
  EXPECT_GT(cr.rounds, 1);
  EXPECT_TRUE(verify_d2_coloring(rgg, cr));
}

TEST(ParallelD2, WindowedSpeculationColorCountReasonable) {
  // The window-of-4 speculation may use a few more colors than serial
  // first-fit, but must stay within a small constant factor.
  const graph::CrsGraph g = test::adjacency_of(graph::laplace2d(300, 300));
  const Coloring serial_c = greedy_d2_coloring(g);
  const Coloring parallel_c = parallel_d2_coloring(g);
  EXPECT_LE(parallel_c.num_colors, 2 * serial_c.num_colors + 4);
}

TEST(D2cAggregation, TotalAndValidOnFamily) {
  for (const NamedGraph& ng : test::test_graph_family()) {
    if (ng.g.num_rows == 0) continue;
    for (D2cMode mode : {D2cMode::Serial, D2cMode::Parallel}) {
      const core::Aggregation agg = aggregate_d2c(ng.g, mode);
      EXPECT_TRUE(core::verify_aggregation(ng.g, agg))
          << ng.name << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(D2cAggregation, CoarseningRatioComparableToMis2Agg) {
  const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(12, 12, 12));
  const core::Aggregation d2c = aggregate_d2c(g, D2cMode::Serial);
  const core::Aggregation m2 = core::aggregate_mis2(g);
  // Both are root+neighborhood schemes on the same mesh: aggregate counts
  // within a factor ~2 of each other.
  EXPECT_LT(d2c.num_aggregates, 2 * m2.num_aggregates + 10);
  EXPECT_LT(m2.num_aggregates, 2 * d2c.num_aggregates + 10);
}

}  // namespace
}  // namespace parmis::coloring
