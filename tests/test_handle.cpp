/// \file test_handle.cpp
/// \brief Tests for the Context/handle API: explicit execution contexts,
/// workspace reuse (the zero-allocation warm-run contract), the Coarsener
/// registry, and cross-context determinism of every registered coarsener.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/aggregation.hpp"
#include "core/coarsen.hpp"
#include "core/coarsener.hpp"
#include "core/mis2.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/rgg.hpp"
#include "parallel/context.hpp"
#include "parallel/execution.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

const graph::CrsGraph& mesh_graph() {
  static const graph::CrsGraph g = test::adjacency_of(graph::laplace3d(12, 12, 12));
  return g;
}

const graph::CrsGraph& rgg_graph() {
  static const graph::CrsGraph g = graph::random_geometric_3d(4000, 18.0, 7);
  return g;
}

/// Contexts the determinism sweeps compare. Serial always; OpenMP at
/// several thread counts when compiled in.
std::vector<Context> sweep_contexts() {
  std::vector<Context> ctxs;
  ctxs.push_back(Context::serial());
#ifdef PARMIS_HAVE_OPENMP
  ctxs.push_back(Context::openmp(1));
  ctxs.push_back(Context::openmp(3));
  ctxs.push_back(Context::openmp(0));  // all hardware threads
#endif
  return ctxs;
}

// ---------------------------------------------------------------- Context

TEST(Context, DefaultSnapshotsTheSingleton) {
  par::ScopedExecution scope(par::Backend::Serial, 1);
  const Context ctx = Context::default_ctx();
  EXPECT_EQ(ctx.backend, par::Backend::Serial);
}

TEST(Context, ScopePinsAndRestores) {
  const par::Backend before = par::Execution::backend();
  {
    Context::Scope scope(Context::serial());
    EXPECT_EQ(par::Execution::backend(), par::Backend::Serial);
    EXPECT_EQ(par::Execution::num_threads(), 1);
  }
  EXPECT_EQ(par::Execution::backend(), before);
}

TEST(Context, ValidationReportsOpenMPFallback) {
  const Context ctx = Context::openmp(4);
  const Context::Validation v = ctx.validate();
  EXPECT_EQ(v.requested, par::Backend::OpenMP);
#ifdef PARMIS_HAVE_OPENMP
  EXPECT_EQ(v.effective, par::Backend::OpenMP);
  EXPECT_FALSE(v.fell_back);
  EXPECT_TRUE(v.message.empty());
  EXPECT_EQ(v.effective_threads, 4);
#else
  EXPECT_EQ(v.effective, par::Backend::Serial);
  EXPECT_TRUE(v.fell_back);
  EXPECT_FALSE(v.message.empty());
  EXPECT_EQ(v.effective_threads, 1);
#endif
}

TEST(Context, SerialValidationNeverFallsBack) {
  const Context::Validation v = Context::serial().validate();
  EXPECT_EQ(v.effective, par::Backend::Serial);
  EXPECT_FALSE(v.fell_back);
  EXPECT_EQ(v.effective_threads, 1);
}

TEST(Context, ScopePreservesSurroundingRequestedBackend) {
  par::ScopedExecution outer(par::Backend::Serial, 1);  // restore everything on exit
  // A surrounding request (possibly a fallback) must stay visible through
  // requested_backend() after an inner Scope exits.
  par::Execution::set_backend(par::Backend::OpenMP);
  {
    Context::Scope scope(Context::serial());
    EXPECT_EQ(par::Execution::backend(), par::Backend::Serial);
  }
  EXPECT_EQ(par::Execution::requested_backend(), par::Backend::OpenMP);
}

TEST(ExecutionConfig, SetBackendSurfacesFallback) {
  par::ScopedExecution scope(par::Backend::Serial, 1);  // restore on exit
  const par::Backend got = par::Execution::set_backend(par::Backend::OpenMP);
  EXPECT_EQ(par::Execution::requested_backend(), par::Backend::OpenMP);
#ifdef PARMIS_HAVE_OPENMP
  EXPECT_EQ(got, par::Backend::OpenMP);
#else
  EXPECT_EQ(got, par::Backend::Serial);
  EXPECT_NE(par::Execution::backend(), par::Execution::requested_backend());
#endif
}

// ------------------------------------------------------- workspace reuse

TEST(Mis2Handle, WarmRunsAreAllocationFreeAndBitIdentical) {
  core::Mis2Handle handle;
  const core::Mis2Result first = [&] {
    handle.run(rgg_graph());
    return handle.result();  // copy: the handle's buffer is reused below
  }();
  const std::size_t warm_capacity = handle.scratch_bytes();
  EXPECT_GT(warm_capacity, 0u);

  for (int rep = 0; rep < 3; ++rep) {
    const core::Mis2Result& again = handle.run(rgg_graph());
    // Zero-allocation warm-run contract: the scratch capacity is stable...
    EXPECT_EQ(handle.scratch_bytes(), warm_capacity) << "rep=" << rep;
    // ...and the results are bit-identical.
    EXPECT_EQ(again.members, first.members) << "rep=" << rep;
    EXPECT_EQ(again.in_set, first.in_set) << "rep=" << rep;
    EXPECT_EQ(again.iterations, first.iterations) << "rep=" << rep;
  }
}

TEST(Mis2Handle, SmallerGraphReusesCapacityOfLarger) {
  core::Mis2Handle handle;
  handle.run(rgg_graph());
  const std::size_t big_capacity = handle.scratch_bytes();
  handle.run(mesh_graph());  // smaller: must fit in the existing scratch
  EXPECT_EQ(handle.scratch_bytes(), big_capacity);
  EXPECT_TRUE(core::verify_mis2(mesh_graph(), handle.result().in_set));
}

TEST(Mis2Handle, MatchesFreeFunctionWrapper) {
  core::Mis2Handle handle;
  const core::Mis2Result& h = handle.run(mesh_graph());
  const core::Mis2Result f = core::mis2(mesh_graph());
  EXPECT_EQ(h.members, f.members);
  EXPECT_EQ(h.iterations, f.iterations);
}

TEST(CoarsenHandle, WarmAggregationsAreAllocationFreeAndBitIdentical) {
  core::CoarsenHandle handle;
  const std::vector<ordinal_t> first_labels = [&] {
    handle.aggregate_mis2(rgg_graph());
    return handle.aggregation().labels;
  }();
  const std::size_t warm_capacity = handle.scratch_bytes();
  EXPECT_GT(warm_capacity, 0u);

  for (int rep = 0; rep < 3; ++rep) {
    const core::Aggregation& again = handle.aggregate_mis2(rgg_graph());
    EXPECT_EQ(handle.scratch_bytes(), warm_capacity) << "rep=" << rep;
    EXPECT_EQ(again.labels, first_labels) << "rep=" << rep;
  }
}

TEST(CoarsenHandle, HandleResultsMatchFreeFunctions) {
  core::CoarsenHandle handle;
  EXPECT_EQ(handle.aggregate_mis2(mesh_graph()).labels,
            core::aggregate_mis2(mesh_graph()).labels);
  EXPECT_EQ(handle.aggregate_basic(mesh_graph()).labels,
            core::aggregate_basic(mesh_graph()).labels);
}

TEST(CoarsenHandle, ReusedAcrossMultilevelHierarchy) {
  core::CoarsenHandle handle;
  core::MultilevelOptions opts;
  opts.target_vertices = 30;
  const core::MultilevelHierarchy h = core::multilevel_coarsen(mesh_graph(), opts, handle);
  ASSERT_GT(h.levels.size(), 1u);  // scratch was genuinely reused across levels

  // A second hierarchy build on the same input is warm: capacity stable,
  // structure identical.
  const std::size_t warm_capacity = handle.scratch_bytes();
  const core::MultilevelHierarchy h2 = core::multilevel_coarsen(mesh_graph(), opts, handle);
  EXPECT_EQ(handle.scratch_bytes(), warm_capacity);
  ASSERT_EQ(h2.levels.size(), h.levels.size());
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    EXPECT_EQ(h2.levels[l].aggregation.labels, h.levels[l].aggregation.labels) << "level " << l;
  }
}

// ------------------------------------------------------------ telemetry

TEST(Mis2Handle, TelemetryCountersAccumulate) {
  core::Mis2Handle handle;
  EXPECT_EQ(handle.stats().runs, 0u);
  EXPECT_EQ(handle.stats().iterations, 0u);
  EXPECT_EQ(handle.stats().scratch_grows, 0u);

  const int it1 = handle.run(rgg_graph()).iterations;
  EXPECT_EQ(handle.stats().runs, 1u);
  EXPECT_EQ(handle.stats().iterations, static_cast<std::uint64_t>(it1));
  EXPECT_EQ(handle.stats().scratch_grows, 1u);  // the cold run

  // Warm runs (same graph, then a smaller one) accumulate runs and
  // iterations but never the allocation counter.
  const int it2 = handle.run(rgg_graph()).iterations;
  const int it3 = handle.run(mesh_graph()).iterations;
  EXPECT_EQ(handle.stats().runs, 3u);
  EXPECT_EQ(handle.stats().iterations, static_cast<std::uint64_t>(it1 + it2 + it3));
  EXPECT_EQ(handle.stats().scratch_grows, 1u);
}

TEST(CoarsenHandle, TelemetryCountersAccumulate) {
  core::CoarsenHandle handle;
  const core::Aggregation& agg = handle.aggregate_mis2(rgg_graph());
  const std::uint64_t it1 =
      static_cast<std::uint64_t>(agg.phase1_iterations + agg.phase2_iterations);
  EXPECT_GT(it1, 0u);
  EXPECT_EQ(handle.stats().runs, 1u);
  EXPECT_EQ(handle.stats().iterations, it1);
  EXPECT_EQ(handle.stats().scratch_grows, 1u);
  // The nested MIS-2 handle keeps its own counters (two runs: phase 1 +
  // the masked phase 2).
  EXPECT_EQ(handle.mis2_handle().stats().runs, 2u);

  (void)handle.aggregate_mis2(rgg_graph());
  EXPECT_EQ(handle.stats().runs, 2u);
  EXPECT_EQ(handle.stats().iterations, 2 * it1);  // deterministic repeat
  EXPECT_EQ(handle.stats().scratch_grows, 1u);    // warm: no growth
}

// ------------------------------------------------------------- registry

TEST(CoarsenerRegistry, NamesAndLookup) {
  const std::vector<std::string> names = core::coarsener_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names.front(), "mis2");  // the paper's scheme leads
  for (const std::string& name : names) {
    const auto coarsener = core::make_coarsener(name);
    ASSERT_NE(coarsener, nullptr);
    EXPECT_EQ(coarsener->name(), name);
    EXPECT_FALSE(core::find_coarsener(name).description.empty());
  }
  EXPECT_THROW((void)core::find_coarsener("no-such-coarsener"), std::out_of_range);
}

TEST(CoarsenerRegistry, EveryCoarsenerProducesValidAggregations) {
  for (const std::string& name : core::coarsener_names()) {
    core::CoarsenHandle handle;
    const auto coarsener = core::make_coarsener(name);
    const core::Aggregation& agg = coarsener->run(mesh_graph(), {}, handle, {});
    EXPECT_GT(agg.num_aggregates, 0) << name;
    EXPECT_LT(agg.num_aggregates, mesh_graph().num_rows) << name;
    EXPECT_TRUE(core::verify_aggregation(mesh_graph(), agg)) << name;
  }
}

/// The acceptance sweep: two different Contexts (Serial vs OpenMP at
/// several thread counts) agree bit-for-bit for every registered
/// coarsener, on both test graphs.
TEST(CoarsenerRegistry, DeterministicAcrossContextsForEveryCoarsener) {
  for (const std::string& name : core::coarsener_names()) {
    const auto coarsener = core::make_coarsener(name);
    for (const graph::CrsGraph* g : {&mesh_graph(), &rgg_graph()}) {
      std::vector<ordinal_t> reference;
      bool first = true;
      for (const Context& ctx : sweep_contexts()) {
        core::CoarsenHandle handle(ctx);
        const core::Aggregation& agg = coarsener->run(*g, {}, handle, {});
        if (first) {
          reference = agg.labels;
          first = false;
        } else {
          EXPECT_EQ(agg.labels, reference)
              << "coarsener=" << name << " backend=" << static_cast<int>(ctx.backend)
              << " threads=" << ctx.num_threads;
        }
      }
    }
  }
}

/// Context seeds perturb the result deterministically: same seed → same
/// set, different seed → (in general) different set, both valid.
TEST(Mis2Handle, ContextSeedIsFoldedIntoPriorities) {
  Context seeded = Context::serial();
  seeded.seed = 0xDEADBEEF;
  core::Mis2Handle h_seeded(core::Mis2Options{}, seeded);
  core::Mis2Handle h_default(core::Mis2Options{}, Context::serial());

  const core::Mis2Result& a = h_seeded.run(rgg_graph());
  EXPECT_TRUE(core::verify_mis2(rgg_graph(), a.in_set));
  const std::vector<ordinal_t> seeded_members = a.members;

  const core::Mis2Result& b = h_default.run(rgg_graph());
  EXPECT_TRUE(core::verify_mis2(rgg_graph(), b.in_set));
  EXPECT_NE(seeded_members, b.members);  // astronomically unlikely to collide

  // Reproducible under the same seeded context.
  core::Mis2Handle h_again(core::Mis2Options{}, seeded);
  EXPECT_EQ(h_again.run(rgg_graph()).members, seeded_members);
}

}  // namespace
}  // namespace parmis
