/// \file test_resilience.cpp
/// \brief Tests for the resilience layer: the failure taxonomy, the
/// fallback-policy grammar, the in-loop IterGuard, breakdown/stagnation/
/// timeout/non-finite detection through `SolveHandle`, classified setup
/// throws, chain recovery, cross-backend determinism of the whole recovery
/// path, and the fault-injection registry (check builds) / its zero-cost
/// release contract (release builds).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "check/digest.hpp"
#include "check/validate.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "obs/timer.hpp"
#include "parallel/context.hpp"
#include "resilience/fault.hpp"
#include "resilience/guard.hpp"
#include "resilience/policy.hpp"
#include "resilience/status.hpp"
#include "solver/amg.hpp"
#include "solver/cg.hpp"
#include "solver/dense_lu.hpp"
#include "solver/handle.hpp"
#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"
#include "test_utils.hpp"

namespace parmis {
namespace {

using resilience::FailureInfo;
using resilience::FallbackPolicy;
using resilience::SolveError;
using resilience::SolveStatus;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------- taxonomy

TEST(ResilienceTaxonomy, NamesAreStableAndUnique) {
  const std::vector<SolveStatus>& all = resilience::all_statuses();
  ASSERT_EQ(all.size(), 9u);
  std::vector<std::string> names;
  for (SolveStatus s : all) names.emplace_back(resilience::to_string(s));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
  }
  // The spellings are part of the --json / CI contract; pin a few.
  EXPECT_STREQ(resilience::to_string(SolveStatus::Converged), "converged");
  EXPECT_STREQ(resilience::to_string(SolveStatus::MaxIterations), "max_iterations");
  EXPECT_STREQ(resilience::to_string(SolveStatus::NonFiniteInput), "non_finite_input");
  EXPECT_FALSE(resilience::is_failure(SolveStatus::Converged));
  for (SolveStatus s : all) {
    if (s != SolveStatus::Converged) EXPECT_TRUE(resilience::is_failure(s));
  }
}

TEST(ResilienceTaxonomy, SolveErrorCarriesClassification) {
  const FailureInfo info{"setup", "setup.lu.singular_pivot", -1, 7};
  try {
    throw SolveError(SolveStatus::SingularOperator, info, "pivot 7 is singular");
  } catch (const std::runtime_error& e) {  // pre-taxonomy catch sites still work
    const auto* classified = dynamic_cast<const SolveError*>(&e);
    ASSERT_NE(classified, nullptr);
    EXPECT_EQ(classified->status(), SolveStatus::SingularOperator);
    EXPECT_STREQ(classified->info().reason, "setup.lu.singular_pivot");
    EXPECT_EQ(classified->info().index, 7);
    EXPECT_STREQ(e.what(), "pivot 7 is singular");
  }
}

// ------------------------------------------------------- fallback policy

TEST(ResilienceFallbackPolicy, ParseRoundTrip) {
  const FallbackPolicy p = FallbackPolicy::parse("amg+cg, jacobi+cg ,none+gmres");
  ASSERT_EQ(p.chain.size(), 3u);
  EXPECT_EQ(p.chain[0].prec, "amg");
  EXPECT_EQ(p.chain[0].solver, "cg");
  EXPECT_EQ(p.chain[2].prec, "none");
  EXPECT_EQ(p.chain[2].solver, "gmres");
  EXPECT_EQ(p.to_string(), "amg+cg,jacobi+cg,none+gmres");
  EXPECT_TRUE(FallbackPolicy::parse("").empty());
  EXPECT_EQ(p.budget(), 3u);
  FallbackPolicy capped = p;
  capped.max_attempts = 2;
  EXPECT_EQ(capped.budget(), 2u);
  capped.max_attempts = 9;
  EXPECT_EQ(capped.budget(), 3u);
}

TEST(ResilienceFallbackPolicy, MalformedSpecThrows) {
  EXPECT_THROW((void)FallbackPolicy::parse("cg"), std::invalid_argument);
  EXPECT_THROW((void)FallbackPolicy::parse("+cg"), std::invalid_argument);
  EXPECT_THROW((void)FallbackPolicy::parse("amg+"), std::invalid_argument);
  EXPECT_THROW((void)FallbackPolicy::parse("amg+cg+extra"), std::invalid_argument);
}

TEST(ResilienceFallbackPolicy, OnClauseParsesAndRoundTrips) {
  const FallbackPolicy p =
      FallbackPolicy::parse("amg+cg on:breakdown|setup_failed, jacobi+cg ,none+gmres on:timeout");
  ASSERT_EQ(p.chain.size(), 3u);
  EXPECT_EQ(p.chain[0].prec, "amg");
  EXPECT_EQ(p.chain[0].solver, "cg");
  ASSERT_EQ(p.chain[0].retry_on.size(), 2u);
  EXPECT_TRUE(p.chain[0].allows_retry(SolveStatus::Breakdown));
  EXPECT_TRUE(p.chain[0].allows_retry(SolveStatus::SetupFailed));
  EXPECT_FALSE(p.chain[0].allows_retry(SolveStatus::Stagnated));
  // No clause = the unconditional historical behavior.
  EXPECT_TRUE(p.chain[1].retry_on.empty());
  EXPECT_TRUE(p.chain[1].allows_retry(SolveStatus::Stagnated));
  ASSERT_EQ(p.chain[2].retry_on.size(), 1u);
  EXPECT_EQ(p.chain[2].retry_on[0], SolveStatus::Timeout);
  EXPECT_EQ(p.to_string(), "amg+cg on:breakdown|setup_failed,jacobi+cg,none+gmres on:timeout");
  // Round trip through parse again: the grammar is closed under to_string.
  EXPECT_EQ(FallbackPolicy::parse(p.to_string()).to_string(), p.to_string());
}

TEST(ResilienceFallbackPolicy, OnClauseRejectsUnknownStatus) {
  EXPECT_THROW((void)FallbackPolicy::parse("amg+cg on:explode"), std::invalid_argument);
  EXPECT_THROW((void)FallbackPolicy::parse("amg+cg on:"), std::invalid_argument);
  EXPECT_FALSE(resilience::status_from_string("explode").has_value());
  ASSERT_TRUE(resilience::status_from_string("breakdown").has_value());
  EXPECT_EQ(*resilience::status_from_string("breakdown"), SolveStatus::Breakdown);
  // Every taxonomy spelling round-trips through the inverse.
  for (SolveStatus s : resilience::all_statuses()) {
    ASSERT_TRUE(resilience::status_from_string(resilience::to_string(s)).has_value());
    EXPECT_EQ(*resilience::status_from_string(resilience::to_string(s)), s);
  }
}

// ------------------------------------------------------------ iter guard

TEST(ResilienceIterGuard, ClassifiesResidualSequences) {
  FailureInfo info;
  {
    resilience::IterGuard g({});
    EXPECT_EQ(g.check(kNaN, 4, info), SolveStatus::Breakdown);
    EXPECT_STREQ(info.reason, "solve.residual.nonfinite");
    EXPECT_EQ(info.iteration, 4);
  }
  {
    resilience::IterGuard g({0, 1e3, 0, 1e-3});
    EXPECT_EQ(g.check(1.0, 0, info), SolveStatus::Converged);
    EXPECT_EQ(g.check(0.5, 1, info), SolveStatus::Converged);
    EXPECT_EQ(g.check(2e3, 2, info), SolveStatus::Diverged);
    EXPECT_STREQ(info.reason, "solve.residual.diverged");
  }
  {
    resilience::IterGuard g({0, 0, 3, 1e-3});  // stagnation window 3, no divergence guard
    EXPECT_EQ(g.check(1.0, 0, info), SolveStatus::Converged);
    EXPECT_EQ(g.check(1.0, 1, info), SolveStatus::Converged);
    EXPECT_EQ(g.check(1.0, 2, info), SolveStatus::Converged);
    EXPECT_EQ(g.check(1.0, 3, info), SolveStatus::Stagnated);
    EXPECT_STREQ(info.reason, "solve.residual.stagnated");
  }
  {
    resilience::IterGuard g({0.05, 0, 0, 1e-3});  // 0.05 ms deadline
    SolveStatus s = SolveStatus::Converged;
    for (int it = 0; it < 100000000 && s == SolveStatus::Converged; ++it) {
      s = g.check(0.5, it, info);
    }
    EXPECT_EQ(s, SolveStatus::Timeout);
    EXPECT_STREQ(info.reason, "solve.deadline");
  }
}

// -------------------------------------------- detection via SolveHandle

TEST(ResilienceDetection, CgBreaksDownOnIndefiniteSystem) {
  // A = diag(1, -1), b = (1, 1), x0 = 0: p^T A p = 0 exactly on the first
  // iteration — the textbook CG breakdown.
  const graph::CrsMatrix a = graph::matrix_from_coo(2, 2, {{0, 0, 1}, {1, 1, -1}});
  const std::vector<scalar_t> b{1, 1};
  std::vector<scalar_t> x(2, 0);
  solver::SolveHandle h;
  const solver::IterResult& r = h.solve(a, b, x);
  EXPECT_EQ(r.status, SolveStatus::Breakdown);
  EXPECT_FALSE(r.converged);
  EXPECT_STREQ(r.failure.reason, "solver.cg.breakdown.pap");
  EXPECT_STREQ(r.failure.stage, "iterate");
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_EQ(r.attempts[0].status, SolveStatus::Breakdown);
  EXPECT_EQ(h.stats().failures, 1u);
}

TEST(ResilienceDetection, GmresStagnatesOnSingularSystem) {
  // Pure graph Laplacian (no diagonal shift) is singular; a generic b has a
  // component in the null space, so the residual floors far above tol and
  // the stagnation guard is the only way out before max_iterations.
  const graph::CrsMatrix a = graph::laplacian_matrix(test::cycle_graph(64), 0.0);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 3);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  solver::SolveHandle h("gmres");
  solver::IterOptions opts;
  opts.max_iterations = 300;
  opts.stagnation_window = 10;
  const solver::IterResult& r = h.solve(a, b, x, opts);
  EXPECT_EQ(r.status, SolveStatus::Stagnated);
  EXPECT_STREQ(r.failure.reason, "solve.residual.stagnated");
  EXPECT_LT(r.iterations, opts.max_iterations);
  EXPECT_TRUE(check::all_finite(x));
}

TEST(ResilienceDetection, NonFiniteInputRejectedUpFront) {
  const graph::CrsMatrix a = graph::laplacian_matrix(test::path_graph(8), 1.0);
  std::vector<scalar_t> b(8, 1.0), x(8, 0.0);
  solver::SolveHandle h;

  b[3] = kNaN;
  const solver::IterResult& rb = h.solve(a, b, x);
  EXPECT_EQ(rb.status, SolveStatus::NonFiniteInput);
  EXPECT_STREQ(rb.failure.reason, "input.b.nonfinite");
  EXPECT_STREQ(rb.failure.stage, "input");
  EXPECT_EQ(rb.failure.index, 3);
  EXPECT_EQ(rb.iterations, 0);
  EXPECT_TRUE(rb.attempts.empty());  // no attempt ran

  b[3] = 1.0;
  x[5] = kInf;
  const solver::IterResult& rx = h.solve(a, b, x);
  EXPECT_EQ(rx.status, SolveStatus::NonFiniteInput);
  EXPECT_STREQ(rx.failure.reason, "input.x0.nonfinite");
  EXPECT_EQ(rx.failure.index, 5);
  EXPECT_EQ(h.stats().failures, 2u);

  x[5] = 0.0;
  const solver::IterResult& ok = h.solve(a, b, x);
  EXPECT_EQ(ok.status, SolveStatus::Converged);
}

TEST(ResilienceDetection, TimeoutReturnsFiniteBestIterate) {
  const graph::CrsMatrix a = graph::laplace2d(64, 64);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 7);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  solver::SolveHandle h;
  solver::IterOptions opts;
  opts.tolerance = 1e-30;  // unreachable: the deadline is the only exit
  opts.max_iterations = 100000000;
  opts.timeout_ms = 5;
  const solver::IterResult& r = h.solve(a, b, x, opts);
  EXPECT_EQ(r.status, SolveStatus::Timeout);
  EXPECT_STREQ(r.failure.reason, "solve.deadline");
  EXPECT_TRUE(check::all_finite(x));
  EXPECT_TRUE(std::isfinite(r.relative_residual));
}

TEST(ResilienceDetection, MaxIterationsAndZeroRhsStatuses) {
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 1);
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  solver::SolveHandle h;
  solver::IterOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 1e-12;
  EXPECT_EQ(h.solve(a, b, x, opts).status, SolveStatus::MaxIterations);

  const std::vector<scalar_t> zero(b.size(), 0.0);
  std::fill(x.begin(), x.end(), 1.0);
  const solver::IterResult& r = h.solve(a, zero, x, opts);
  EXPECT_EQ(r.status, SolveStatus::Converged);
  for (scalar_t v : x) EXPECT_EQ(v, 0.0);
}

// -------------------------------------------------------- fallback chain

TEST(ResilienceFallback, ChainRecoversFromBreakdown) {
  // CG breaks down on the indefinite system; the chain's GMRES entry
  // retries from the original x0 and solves it exactly: x = (1, -1).
  const graph::CrsMatrix a = graph::matrix_from_coo(2, 2, {{0, 0, 1}, {1, 1, -1}});
  const std::vector<scalar_t> b{1, 1};
  std::vector<scalar_t> x(2, 0);
  solver::SolveHandle h;
  h.set_fallback("none+cg,none+gmres");
  const solver::IterResult& r = h.solve(a, b, x);
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].solver, "cg");
  EXPECT_EQ(r.attempts[0].status, SolveStatus::Breakdown);
  EXPECT_EQ(r.attempts[1].solver, "gmres");
  EXPECT_EQ(r.attempts[1].status, SolveStatus::Converged);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], -1.0, 1e-10);
  EXPECT_EQ(h.stats().fallback_attempts, 1u);
  EXPECT_EQ(h.stats().failures, 0u);  // the chain as a whole succeeded
}

TEST(ResilienceFallback, OnClauseGatesTheChain) {
  // Same indefinite system as above: CG's status is Breakdown. A chain
  // whose first entry only falls through on stagnation must STOP after
  // the breakdown — GMRES never runs and the failure is reported.
  const graph::CrsMatrix a = graph::matrix_from_coo(2, 2, {{0, 0, 1}, {1, 1, -1}});
  const std::vector<scalar_t> b{1, 1};
  {
    std::vector<scalar_t> x(2, 0);
    solver::SolveHandle h;
    h.set_fallback("none+cg on:stagnated,none+gmres");
    const solver::IterResult& r = h.solve(a, b, x);
    EXPECT_EQ(r.status, SolveStatus::Breakdown);
    ASSERT_EQ(r.attempts.size(), 1u);
    EXPECT_EQ(h.stats().fallback_attempts, 0u);
  }
  // The same chain gated on breakdown proceeds and recovers.
  {
    std::vector<scalar_t> x(2, 0);
    solver::SolveHandle h;
    h.set_fallback("none+cg on:breakdown,none+gmres");
    const solver::IterResult& r = h.solve(a, b, x);
    EXPECT_EQ(r.status, SolveStatus::Converged);
    ASSERT_EQ(r.attempts.size(), 2u);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], -1.0, 1e-10);
  }
}

TEST(ResilienceFallback, SpecValidatedAgainstRegistries) {
  solver::SolveHandle h;
  EXPECT_THROW(h.set_fallback("bogus+cg"), std::out_of_range);
  EXPECT_THROW(h.set_fallback("none+bogus"), std::out_of_range);
  EXPECT_THROW(h.set_fallback("cg"), std::invalid_argument);
  h.set_fallback("none+gmres");
  EXPECT_FALSE(h.fallback().empty());
  h.set_fallback("");
  EXPECT_TRUE(h.fallback().empty());
}

TEST(ResilienceFallback, OutcomeBitIdenticalAcrossContexts) {
  // The whole failure-then-fallback path — detection, attempt sequence, and
  // the final iterate — must not depend on backend, thread count, or
  // schedule. Run the same chained solve under three contexts and compare
  // attempt statuses and the bitwise digest of x.
  const graph::CrsMatrix a = graph::laplacian_matrix(test::cycle_graph(200), 0.0);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 11);

  Context omp_static = Context::openmp(4);
  omp_static.schedule = par::Schedule::Static;
  Context omp_edge = Context::openmp(4);
  omp_edge.schedule = par::Schedule::EdgeBalanced;
  const std::vector<Context> contexts{Context::serial(), omp_static, omp_edge};

  std::vector<std::uint64_t> digests;
  std::vector<std::vector<SolveStatus>> sequences;
  for (const Context& ctx : contexts) {
    solver::SolveHandle h(ctx);
    h.set_fallback("none+cg,none+gmres");
    solver::IterOptions opts;
    opts.max_iterations = 80;
    opts.stagnation_window = 8;
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    const solver::IterResult& r = h.solve(a, b, x, opts);
    EXPECT_TRUE(resilience::is_failure(r.status));  // singular system: chain exhausts
    std::vector<SolveStatus> seq;
    for (const solver::AttemptInfo& at : r.attempts) seq.push_back(at.status);
    sequences.push_back(std::move(seq));
    digests.push_back(check::digest(x));
  }
  for (std::size_t i = 1; i < contexts.size(); ++i) {
    EXPECT_EQ(sequences[i], sequences[0]);
    EXPECT_EQ(digests[i], digests[0]) << "context " << i << " produced different bits";
  }
}

// ------------------------------------------------ classified setup throws

TEST(ResilienceSetup, JacobiZeroDiagonalClassified) {
  // Off-diagonal-only matrix: every diagonal entry is (implicitly) zero.
  const graph::CrsMatrix a = graph::matrix_from_coo(2, 2, {{0, 1, 1}, {1, 0, 1}});
  try {
    (void)solver::inverted_diagonal(a);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), SolveStatus::SingularOperator);
    EXPECT_STREQ(e.info().reason, "setup.jacobi.zero_diagonal");
    EXPECT_STREQ(e.info().stage, "setup");
    EXPECT_EQ(e.info().index, 0);  // first offending row
  }
}

TEST(ResilienceSetup, DenseLuSingularPivotClassified) {
  // Rank-1 matrix: elimination zeroes the second column -> pivot 1 is 0.
  const graph::CrsMatrix a =
      graph::matrix_from_coo(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 0, 2}, {1, 1, 4}});
  try {
    solver::DenseLU lu(a);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), SolveStatus::SingularOperator);
    EXPECT_STREQ(e.info().reason, "setup.lu.singular_pivot");
    EXPECT_EQ(e.info().index, 1);
  }
}

TEST(ResilienceSetup, SingularOperatorRecoverableThroughChain) {
  // A Jacobi-preconditioned attempt on a zero-diagonal matrix fails in
  // setup with SingularOperator; the unpreconditioned GMRES entry solves
  // the (permutation) system anyway.
  const graph::CrsMatrix a = graph::matrix_from_coo(2, 2, {{0, 1, 1}, {1, 0, 1}});
  const std::vector<scalar_t> b{5, 7};
  std::vector<scalar_t> x(2, 0);
  solver::SolveHandle h;
  h.set_fallback("jacobi+gmres,none+gmres");
  const solver::IterResult& r = h.solve(a, b, x);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].status, SolveStatus::SingularOperator);
  EXPECT_EQ(r.attempts[1].status, SolveStatus::Converged);
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_NEAR(x[0], 7.0, 1e-10);
  EXPECT_NEAR(x[1], 5.0, 1e-10);
}

#if PARMIS_FAULT_ENABLED

// ------------------------------------------- fault injection (check build)

/// Every fault test starts and ends disarmed, so no armed point can leak
/// into an unrelated test (the registry is process-global).
class ResilienceFault : public ::testing::Test {
 protected:
  void SetUp() override { resilience::disarm_faults(); }
  void TearDown() override { resilience::disarm_faults(); }
};

TEST_F(ResilienceFault, RegistryIsDeterministicAndOneShot) {
  resilience::arm_fault("t.point", 2);
  EXPECT_TRUE(resilience::faults_armed());
  EXPECT_FALSE(resilience::fault_fires("t.point"));  // hit 1
  EXPECT_TRUE(resilience::fault_fires("t.point"));   // hit 2: fires...
  EXPECT_FALSE(resilience::fault_fires("t.point"));  // ...and is spent
  EXPECT_EQ(resilience::fault_hits("t.point"), 3u);

  resilience::disarm_faults();
  EXPECT_EQ(resilience::arm_faults_spec("a@3,b"), 2);
  EXPECT_TRUE(resilience::faults_armed());
  EXPECT_THROW((void)resilience::arm_faults_spec("x@"), std::invalid_argument);
  EXPECT_THROW((void)resilience::arm_faults_spec("x@zero"), std::invalid_argument);
  EXPECT_THROW((void)resilience::arm_faults_spec("@2"), std::invalid_argument);

  const std::vector<const char*>& known = resilience::known_fault_points();
  EXPECT_GE(known.size(), 10u);
  for (std::size_t i = 0; i < known.size(); ++i) {
    for (std::size_t j = i + 1; j < known.size(); ++j) {
      EXPECT_STRNE(known[i], known[j]);
    }
  }
}

TEST_F(ResilienceFault, InjectedBreakdownRecoversBitIdenticallyAcrossBackends) {
  // The acceptance scenario: a fault-injected first attempt breaks down,
  // the chain recovers, and the recovered solution is bit-identical across
  // backends and schedules (the fault counter advances at serial points).
  const graph::CrsMatrix a = graph::laplace2d(24, 24);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 5);

  Context omp_static = Context::openmp(4);
  omp_static.schedule = par::Schedule::Static;
  const std::vector<Context> contexts{Context::serial(), Context::openmp(4), omp_static};

  std::vector<std::uint64_t> digests;
  for (const Context& ctx : contexts) {
    resilience::disarm_faults();
    resilience::arm_fault("cg.pap", 3);  // break down on CG iteration 3
    solver::SolveHandle h(ctx);
    h.set_fallback("none+cg,none+gmres");
    solver::IterOptions opts;
    opts.tolerance = 1e-10;
    opts.max_iterations = 500;
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    const solver::IterResult& r = h.solve(a, b, x, opts);
    ASSERT_EQ(r.attempts.size(), 2u);
    EXPECT_EQ(r.attempts[0].status, SolveStatus::Breakdown);
    EXPECT_STREQ(r.attempts[0].failure.reason, "solver.cg.breakdown.pap");
    EXPECT_EQ(r.attempts[1].status, SolveStatus::Converged);
    EXPECT_EQ(r.status, SolveStatus::Converged);
    digests.push_back(check::digest(x));
  }
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "context " << i << " recovered different bits";
  }
}

TEST_F(ResilienceFault, PoisonFaultsClassifiedAsBreakdown) {
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 2);
  const struct {
    const char* solver;
    const char* fault;
  } cases[] = {{"cg", "cg.poison"}, {"gmres", "gmres.poison"}, {"chebyshev", "chebyshev.poison"}};
  for (const auto& c : cases) {
    resilience::disarm_faults();
    resilience::arm_fault(c.fault, 2);
    solver::SolveHandle h(c.solver);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    const solver::IterResult& r = h.solve(a, b, x);
    // The NaN is caught either by the residual guard or by a solver's own
    // recurrence check (GMRES sees it first in the Hessenberg update);
    // either way the classification is Breakdown at iterate stage.
    EXPECT_EQ(r.status, SolveStatus::Breakdown) << c.fault;
    EXPECT_STREQ(r.failure.stage, "iterate");
    EXPECT_NE(r.failure.reason[0], '\0');
  }
}

TEST_F(ResilienceFault, DivergenceFaultClassified) {
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 2);
  resilience::arm_fault("cg.diverge", 2);
  solver::SolveHandle h;
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  const solver::IterResult& r = h.solve(a, b, x);
  EXPECT_EQ(r.status, SolveStatus::Diverged);
  EXPECT_STREQ(r.failure.reason, "solve.residual.diverged");
}

TEST_F(ResilienceFault, WorkspaceAllocationFailureIsSetupFailed) {
  const graph::CrsMatrix a = graph::laplace2d(8, 8);
  const std::vector<scalar_t> b(static_cast<std::size_t>(a.num_rows), 1.0);
  resilience::arm_fault("workspace.alloc");
  solver::SolveHandle h;
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  const solver::IterResult& r = h.solve(a, b, x);
  EXPECT_EQ(r.status, SolveStatus::SetupFailed);
  EXPECT_STREQ(r.failure.reason, "setup.allocation");
  EXPECT_EQ(h.stats().failures, 1u);
}

TEST_F(ResilienceFault, AmgBottomSolveDegradesGracefully) {
  const graph::CrsMatrix a = graph::laplace2d(32, 32);

  const solver::AmgHierarchy plain = solver::AmgHierarchy::build(a, {});
  EXPECT_STREQ(plain.bottom_solve(), "lu");

  // Coarsest factorization reported singular -> diagonally perturbed LU.
  resilience::arm_fault("amg.coarse_singular");
  const solver::AmgHierarchy perturbed = solver::AmgHierarchy::build(a, {});
  EXPECT_STREQ(perturbed.bottom_solve(), "lu-perturbed");

  // Even the perturbed factorization failing -> smoother-only bottom.
  resilience::disarm_faults();
  resilience::arm_fault("amg.coarse_singular");
  resilience::arm_fault("lu.zero_pivot");
  const solver::AmgHierarchy smoother = solver::AmgHierarchy::build(a, {});
  EXPECT_STREQ(smoother.bottom_solve(), "smoother");

  // All three hierarchies still precondition a convergent CG solve.
  for (const solver::AmgHierarchy* prec : {&plain, &perturbed, &smoother}) {
    const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 9);
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
    solver::IterOptions opts;
    opts.max_iterations = 200;
    const solver::IterResult r = solver::cg(a, b, x, opts, prec);
    EXPECT_TRUE(r.converged) << prec->bottom_solve();
  }
}

TEST_F(ResilienceFault, AmgSetupThrowRecoverableThroughChain) {
  const graph::CrsMatrix a = graph::laplace2d(16, 16);
  const std::vector<scalar_t> b = solver::random_vector(a.num_rows, 4);
  resilience::arm_fault("amg.setup_throw");
  solver::SolveHandle h;
  h.set_fallback("amg+cg,none+cg");
  std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows), 0);
  const solver::IterResult& r = h.solve(a, b, x);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].status, SolveStatus::SetupFailed);
  EXPECT_EQ(r.attempts[1].status, SolveStatus::Converged);
  EXPECT_EQ(r.status, SolveStatus::Converged);
}

#else  // !PARMIS_FAULT_ENABLED

// --------------------------------------- release contract: zero-cost sites

TEST(ResilienceFault, CompiledOutSitesNeverFire) {
  // Arming still works (drivers parse --fault uniformly), but a
  // compiled-out site never consults the registry: no hit is recorded and
  // the branch is constant-false.
  resilience::arm_fault("release.site");
  int fired = 0;
  if (PARMIS_FAULT_POINT("release.site")) ++fired;
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(resilience::fault_hits("release.site"), 0u);
  resilience::disarm_faults();
}

TEST(ResilienceFault, MillionDisabledSitesAreFree) {
  // Mirror of the PARMIS_CHECK zero-overhead pin: a million disabled fault
  // points must cost (approximately) nothing.
  obs::Timer timer;
  std::uint64_t fired = 0;
  for (int i = 0; i < 1000000; ++i) {
    if (PARMIS_FAULT_POINT("hot.site")) ++fired;
  }
  const double ms = timer.milliseconds();
  EXPECT_EQ(fired, 0u);
  EXPECT_LT(ms, 500.0) << "disabled fault points are not free";
}

#endif  // PARMIS_FAULT_ENABLED

}  // namespace
}  // namespace parmis
