/// \file test_generators.cpp
/// \brief Tests for the Galeri-style generators, RGG surrogates, Laplacian
/// values, Matrix Market I/O, and the experiment registry.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/ops.hpp"
#include "graph/registry.hpp"
#include "graph/rgg.hpp"
#include "graph/spgemm.hpp"
#include "graph/spmv.hpp"
#include "parallel/execution.hpp"
#include "test_utils.hpp"

namespace parmis::graph {
namespace {

TEST(Laplace3D, SevenPointStencilStructure) {
  const CrsMatrix a = laplace3d(4, 5, 6);
  EXPECT_EQ(a.num_rows, 4 * 5 * 6);
  EXPECT_TRUE(a.structure().validate());
  EXPECT_TRUE(is_symmetric(a));
  // Interior row: 7 entries; corner row: 4 entries.
  const ordinal_t interior = 1 + 4 * (1 + 5 * 1);  // (1,1,1)
  EXPECT_EQ(a.degree(interior), 7);
  EXPECT_EQ(a.degree(0), 4);
  // Galeri convention: constant diagonal 6, off-diagonal -1.
  for (offset_t j = a.row_map[interior]; j < a.row_map[interior + 1]; ++j) {
    const bool diag = a.entries[static_cast<std::size_t>(j)] == interior;
    EXPECT_DOUBLE_EQ(a.values[static_cast<std::size_t>(j)], diag ? 6.0 : -1.0);
  }
}

TEST(Laplace3D, PaperScaleEntryCount) {
  // Table II reports 6.94M entries for Laplace3D_100.
  const CrsMatrix a = laplace3d(100, 100, 100);
  EXPECT_EQ(a.num_rows, 1000000);
  EXPECT_NEAR(static_cast<double>(a.num_entries()) / 1e6, 6.94, 0.01);
}

TEST(Laplace2D, StencilVariants) {
  const CrsMatrix five = laplace2d(10, 10);
  const CrsMatrix nine = laplace2d(10, 10, Stencil2D::NinePoint);
  const ordinal_t interior = 11;
  EXPECT_EQ(five.degree(interior), 5);
  EXPECT_EQ(nine.degree(interior), 9);
  EXPECT_TRUE(is_symmetric(five));
  EXPECT_TRUE(is_symmetric(nine));
}

TEST(Laplace3D, NineteenPointInteriorDegree) {
  const CrsMatrix a = laplace3d(5, 5, 5, Stencil3D::NineteenPoint);
  const ordinal_t interior = 2 + 5 * (2 + 5 * 2);
  EXPECT_EQ(a.degree(interior), 19);
}

TEST(StencilMatrices, DiagonallyDominantSPDProxy) {
  // Constant diagonal = interior degree makes boundary rows strictly
  // dominant; a positive quadratic form on a few random vectors is a cheap
  // SPD sanity check.
  for (const CrsMatrix& a :
       {laplace2d(7, 9), laplace3d(4, 4, 5, Stencil3D::TwentySevenPoint), elasticity3d(3, 3, 3)}) {
    std::vector<scalar_t> x(static_cast<std::size_t>(a.num_rows));
    std::vector<scalar_t> ax(x.size());
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      rng::SplitMix64 gen(seed);
      for (auto& v : x) v = gen.next_double() - 0.5;
      spmv(a, x, ax);
      scalar_t quad = 0;
      for (std::size_t i = 0; i < x.size(); ++i) quad += x[i] * ax[i];
      EXPECT_GT(quad, 0) << "seed " << seed;
    }
  }
}

TEST(Elasticity3D, ThreeDofBlockStructure) {
  const CrsMatrix a = elasticity3d(3, 3, 3);
  EXPECT_EQ(a.num_rows, 27 * 3);
  EXPECT_TRUE(is_symmetric(a));
  // Center node (1,1,1): full 27-point stencil, 3 dof => 81 entries/row.
  const ordinal_t center_node = 1 + 3 * (1 + 3 * 1);
  for (ordinal_t d = 0; d < 3; ++d) {
    EXPECT_EQ(a.degree(center_node * 3 + d), 81);
  }
  // Paper's avg degree for Elasticity3D_60 is ~78 at 60^3; small grids are
  // boundary-dominated but the interior matches 81 incl. the diagonal.
}

TEST(Elasticity3D, PaperScaleAvgDegree) {
  const CrsMatrix a = elasticity3d(20, 20, 20);  // scaled-down 60^3
  const double avg = static_cast<double>(a.num_entries()) / a.num_rows;
  // Paper reports 78.33 at 60^3; 20^3 has relatively more boundary, so a
  // looser band applies.
  EXPECT_GT(avg, 65.0);
  EXPECT_LT(avg, 81.0);
}

TEST(LaplacianMatrix, DegreePlusShiftDiagonal) {
  const CrsGraph g = test::star_graph(4);
  const CrsMatrix a = laplacian_matrix(g, 0.5);
  EXPECT_EQ(a.num_entries(), g.num_entries() + g.num_rows);
  // Hub diagonal = 4 + 0.5, leaves = 1 + 0.5.
  const std::vector<scalar_t> d = extract_diagonal(a);
  EXPECT_DOUBLE_EQ(d[0], 4.5);
  EXPECT_DOUBLE_EQ(d[1], 1.5);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_TRUE(a.structure().validate());
}

TEST(Rgg3D, HitsTargetDegree) {
  const ordinal_t n = 20000;
  for (double target : {6.0, 18.0, 40.0}) {
    const CrsGraph g = random_geometric_3d(n, target, 42);
    EXPECT_TRUE(g.validate());
    EXPECT_TRUE(is_symmetric(g));
    EXPECT_FALSE(has_self_loops(g));
    const double avg = static_cast<double>(g.num_entries()) / n;
    EXPECT_NEAR(avg, target, 0.15 * target) << "target " << target;
  }
}

TEST(Rgg2D, HitsTargetDegree) {
  const CrsGraph g = random_geometric_2d(20000, 8.0, 3);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_NEAR(static_cast<double>(g.num_entries()) / 20000, 8.0, 1.2);
}

TEST(Rgg3D, DeterministicInSeed) {
  const CrsGraph a = random_geometric_3d(5000, 10.0, 7);
  const CrsGraph b = random_geometric_3d(5000, 10.0, 7);
  const CrsGraph c = random_geometric_3d(5000, 10.0, 8);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.row_map, b.row_map);
  EXPECT_NE(a.entries, c.entries);
}

TEST(Rgg3D, ThreadCountInvariant) {
  graph::CrsGraph serial_g, parallel_g;
  {
    par::ScopedExecution scope(par::Backend::Serial, 1);
    serial_g = random_geometric_3d(8000, 12.0, 5);
  }
  {
    par::ScopedExecution scope(par::Backend::OpenMP, 0);
    parallel_g = random_geometric_3d(8000, 12.0, 5);
  }
  EXPECT_EQ(serial_g.row_map, parallel_g.row_map);
  EXPECT_EQ(serial_g.entries, parallel_g.entries);
}

TEST(PowerLawGraph, SkewedDegreesAndValidStructure) {
  const CrsGraph g = power_law_graph(4000, 2.2, 3, 400, 7);
  EXPECT_EQ(g.num_rows, 4000);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(is_symmetric(g));
  const DegreeStats s = degree_stats(g);
  // Heavy tail: the max degree dwarfs the average — the scheduling skew
  // the edge-balanced policies exist for.
  EXPECT_GT(s.avg_degree, 3.0);
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.avg_degree);
}

TEST(PowerLawGraph, DeterministicInSeedAndDistinctAcrossSeeds) {
  const CrsGraph a = power_law_graph(1500, 2.3, 2, 200, 11);
  const CrsGraph b = power_law_graph(1500, 2.3, 2, 200, 11);
  EXPECT_EQ(a.row_map, b.row_map);
  EXPECT_EQ(a.entries, b.entries);
  const CrsGraph c = power_law_graph(1500, 2.3, 2, 200, 12);
  EXPECT_NE(a.entries, c.entries);
}

TEST(PowerLawGraph, TrivialSizes) {
  EXPECT_EQ(power_law_graph(0, 2.2, 2, 50, 1).num_rows, 0);
  const CrsGraph one = power_law_graph(1, 2.2, 2, 50, 1);
  EXPECT_EQ(one.num_rows, 1);
  EXPECT_EQ(one.num_entries(), 0);  // no self loops possible
}

TEST(StarHubGraph, ExactStructure) {
  const ordinal_t hubs = 5, leaves = 7;
  const CrsGraph g = star_hub_graph(hubs, leaves);
  EXPECT_EQ(g.num_rows, hubs * (leaves + 1));
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(is_symmetric(g));
  for (ordinal_t h = 0; h < hubs; ++h) {
    EXPECT_EQ(g.degree(h), leaves + 2) << "hub " << h;  // leaves + ring
    for (ordinal_t l = 0; l < leaves; ++l) {
      const ordinal_t leaf = hubs + h * leaves + l;
      EXPECT_EQ(g.degree(leaf), 1);
      EXPECT_EQ(g.row(leaf)[0], h);
    }
  }
}

TEST(StarHubGraph, DegenerateHubCounts) {
  // One hub: a pure star, no ring edge.
  const CrsGraph star = star_hub_graph(1, 4);
  EXPECT_EQ(star.degree(0), 4);
  // Two hubs: the ring collapses to a single (deduplicated) edge.
  const CrsGraph two = star_hub_graph(2, 3);
  EXPECT_EQ(two.degree(0), 4);  // 3 leaves + 1 ring edge
  EXPECT_TRUE(two.validate());
}

TEST(MatrixMarket, RoundTrip) {
  const CrsMatrix a = laplace2d(6, 5);
  const std::string path = std::filesystem::temp_directory_path() / "parmis_mm_test.mtx";
  write_matrix_market(path, a);
  const CrsMatrix b = read_matrix_market(path);
  EXPECT_EQ(b.num_rows, a.num_rows);
  EXPECT_EQ(b.row_map, a.row_map);
  EXPECT_EQ(b.entries, a.entries);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.values[i], a.values[i]);
  }
  std::remove(path.c_str());
}

TEST(MatrixMarket, SymmetricExpansion) {
  const std::string path = std::filesystem::temp_directory_path() / "parmis_mm_sym.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n";
    out << "% comment line\n";
    out << "3 3 4\n";
    out << "1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 1.5\n";
  }
  const CrsMatrix m = read_matrix_market(path);
  EXPECT_EQ(m.num_entries(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(m.row_values(0)[1], -1.0);
  EXPECT_DOUBLE_EQ(m.row_values(1)[0], -1.0);
  std::remove(path.c_str());
}

TEST(MatrixMarket, PatternField) {
  const std::string path = std::filesystem::temp_directory_path() / "parmis_mm_pat.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n";
    out << "2 2 2\n1 2\n2 1\n";
  }
  const CrsMatrix m = read_matrix_market(path);
  EXPECT_EQ(m.num_entries(), 2);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 1.0);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsGarbage) {
  const std::string path = std::filesystem::temp_directory_path() / "parmis_mm_bad.mtx";
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);
  EXPECT_THROW(read_matrix_market("/nonexistent/path.mtx"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Registry, SeventeenTable2Matrices) {
  EXPECT_EQ(table2_matrices().size(), 17u);
  EXPECT_NO_THROW(find_matrix("Laplace3D_100"));
  EXPECT_NO_THROW(find_matrix("bodyy5"));
  EXPECT_THROW(find_matrix("no_such_matrix"), std::out_of_range);
}

TEST(Registry, SurrogatesMatchPaperStatsAtSmallScale) {
  // At 2% scale every surrogate should still be SPD-structured, symmetric,
  // and roughly match the paper's average degree (the structural knob the
  // experiments depend on).
  for (const MatrixSpec& spec : experiment_matrices()) {
    const CrsMatrix m = spec.build(0.02);
    EXPECT_TRUE(m.structure().validate()) << spec.name;
    EXPECT_TRUE(is_symmetric(m)) << spec.name;
    EXPECT_GT(m.num_rows, 0) << spec.name;
    const graph::CrsGraph adj = test::adjacency_of(m);
    const double avg = static_cast<double>(adj.num_entries()) / adj.num_rows;
    // Stencil surrogates lose degree to boundaries at tiny scale; accept a
    // factor-of-2 band around the paper value.
    EXPECT_GT(avg, 0.4 * spec.paper.avg_degree) << spec.name;
    EXPECT_LT(avg, 2.1 * spec.paper.avg_degree) << spec.name;
  }
}

TEST(Registry, ExactGaleriProblemsAtFullScale) {
  const CrsMatrix lap = find_matrix("Laplace3D_100").build(1.0);
  EXPECT_EQ(lap.num_rows, 1000000);
  const CrsMatrix ela = find_matrix("Elasticity3D_60").build(0.03);  // 1/33 of 60^3
  EXPECT_EQ(ela.num_rows % 3, 0);
}

}  // namespace
}  // namespace parmis::graph
