#!/usr/bin/env python3
"""Repo-specific lint rules for parmis.

clang-tidy covers generic C++ hazards; this linter enforces the contracts
that are *specific to this codebase* and invisible to a generic tool:

  R1  no-raw-omp        `#pragma omp` appears only under src/parallel/.
                        Every other subsystem must go through the par::
                        primitives so the Serial backend and the
                        deterministic schedules keep working.
  R2  no-ambient-rng    No `rand()` / `std::random_device` under src/.
                        All randomness flows from explicit seeds through
                        rng:: counter-based hashing; ambient entropy would
                        break the bit-determinism contract.
  R3  no-naked-alloc    No `new[]` / `malloc`-family calls under src/.
                        Scratch lives in handle-owned std::vectors so the
                        warm-run zero-allocation contract stays auditable
                        (check/alloc_guard.cpp, the interposer itself, is
                        the one exemption).
  R4  unique-span-names Every PARMIS_SPAN literal is unique per file, so
                        trace aggregation never folds two distinct sites
                        into one row.

Usage:
  python3 tools/lint_parmis.py [--root DIR]     lint the tree (exit 1 on findings)
  python3 tools/lint_parmis.py --self-test      seed one violation per rule
                                                and verify each is caught

Line-based on purpose: no compiler, no dependencies, runs anywhere in <1s.
Suppress a true-but-intended finding with `// lint-parmis: allow(<rule>)`
on the same line.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

SOURCE_GLOBS = ("src/**/*.cpp", "src/**/*.hpp")

# (rule id, compiled pattern, path predicate, message)
RULES = [
    (
        "no-raw-omp",
        re.compile(r"#\s*pragma\s+omp\b"),
        lambda rel: not rel.startswith("src/parallel/"),
        "raw `#pragma omp` outside src/parallel/ — use the par:: primitives",
    ),
    (
        "no-ambient-rng",
        re.compile(r"\bstd::random_device\b|(?<![\w:])rand\s*\(\s*\)"),
        lambda rel: True,
        "ambient RNG — thread an explicit seed through rng:: hashing instead",
    ),
    (
        "no-naked-alloc",
        re.compile(r"\bnew\s+[A-Za-z_][\w:<>, ]*\[|(?<![\w:])(?:malloc|calloc|realloc)\s*\("),
        lambda rel: rel != "src/check/alloc_guard.cpp",
        "naked array-new/malloc — scratch belongs in handle-owned std::vectors",
    ),
]

SPAN_RE = re.compile(r"PARMIS_SPAN\s*\(\s*\"([^\"]+)\"\s*\)")
ALLOW_RE = re.compile(r"//\s*lint-parmis:\s*allow\(([\w-]+)\)")


def strip_comments(line: str) -> str:
    """Drop // comments so commented-out code is not flagged (keeps the
    allow() marker visible to the caller, which inspects the raw line)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_file(path: Path, rel: str) -> list[str]:
    findings = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [f"{rel}: unreadable: {e}"]

    span_names: dict[str, int] = {}
    for lineno, raw in enumerate(lines, 1):
        allowed = set(ALLOW_RE.findall(raw))
        line = strip_comments(raw)
        for rule, pattern, applies, message in RULES:
            if rule in allowed or not applies(rel):
                continue
            if pattern.search(line):
                findings.append(f"{rel}:{lineno}: [{rule}] {message}")
        for name in SPAN_RE.findall(line):
            if "unique-span-names" in allowed:
                continue
            if name in span_names:
                findings.append(
                    f"{rel}:{lineno}: [unique-span-names] PARMIS_SPAN(\"{name}\") "
                    f"duplicates line {span_names[name]} in this file"
                )
            else:
                span_names[name] = lineno
    return findings


def lint_tree(root: Path) -> list[str]:
    findings = []
    for glob in SOURCE_GLOBS:
        for path in sorted(root.glob(glob)):
            rel = path.relative_to(root).as_posix()
            findings.extend(lint_file(path, rel))
    return findings


# --------------------------------------------------------------- self-test

SEEDED = {
    "no-raw-omp": ("src/core/seeded.cpp", "#pragma omp parallel for\n"),
    "no-ambient-rng": ("src/core/seeded.cpp", "int x = rand();\n"),
    "no-naked-alloc": ("src/core/seeded.cpp", "int* p = new int[16];\n"),
    "unique-span-names": (
        "src/core/seeded.cpp",
        'PARMIS_SPAN("dup.name");\nPARMIS_SPAN("dup.name");\n',
    ),
}

CLEAN_SNIPPETS = [
    ("src/parallel/omp_ok.cpp", "#pragma omp parallel for\n"),  # R1 scoped out
    ("src/core/clean.cpp", "// int x = rand();  commented out\n"),
    ("src/core/allowed.cpp", "int* p = new int[4];  // lint-parmis: allow(no-naked-alloc)\n"),
    ("src/core/spans.cpp", 'PARMIS_SPAN("a.b");\nPARMIS_SPAN("a.c");\n'),
]


def self_test() -> int:
    failures = []
    for rule, (rel, body) in SEEDED.items():
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            f = root / rel
            f.parent.mkdir(parents=True)
            f.write_text(body)
            found = lint_tree(root)
            if not any(f"[{rule}]" in line for line in found):
                failures.append(f"seeded {rule} violation was NOT caught (got: {found})")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel, body in CLEAN_SNIPPETS:
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(body)
        found = lint_tree(root)
        if found:
            failures.append(f"clean snippets produced findings: {found}")
    if failures:
        print("lint_parmis self-test FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print(f"lint_parmis self-test OK ({len(SEEDED)} rules caught, "
          f"{len(CLEAN_SNIPPETS)} clean snippets quiet)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule catches a seeded violation")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for line in findings:
        print(line)
    if findings:
        print(f"\nlint_parmis: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_parmis: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
